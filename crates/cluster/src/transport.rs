//! The router↔shard transport abstraction.
//!
//! Every replica leg of a cluster operation crosses the transport
//! twice: a request (command capsule plus any write payload) travels
//! router → shard before the shard's submission queue sees it, and a
//! completion (capsule plus any read payload) travels shard → router
//! before the leg counts toward the operation's quorum. The default
//! [`InProcess`] transport delivers both instantly and losslessly —
//! byte-identical to the pre-transport cluster — while a
//! [`kvssd_fabric::Fabric`] charges per-link latency, serialization,
//! queueing, and seeded faults.
//!
//! A leg whose *request* is lost never executes on its device; a leg
//! whose *completion* is lost executed (the write is durable on that
//! replica) but cannot acknowledge. Operations that collect fewer
//! acknowledgements than their quorum return
//! [`kvssd_core::KvError::QuorumUnavailable`] instead of pretending.
//!
//! The contract is *deadline-aware*: both directions return the full
//! [`Delivery`] (original arrival, duplicated-copy arrival, admission
//! instant), so the router can tell exactly when a leg will never
//! acknowledge and re-issue it under its per-op deadline
//! ([`crate::ClusterConfig::deadlines`]), and so replicas can observe
//! the duplicate deliveries they must dedupe. [`Transport::
//! is_partitioned`] exposes link state the hedging paths use to avoid
//! wasting a spare leg on a link that is known to swallow it.

use kvssd_fabric::Delivery;
use kvssd_sim::{SimDuration, SimTime};

/// Wire overhead of one request capsule (command + addressing), on top
/// of key/value payload bytes. NVMe-oF-ish: a 64 B command capsule.
pub const REQUEST_CAPSULE_BYTES: u64 = 64;

/// Wire size of one completion capsule (status + context).
pub const RESPONSE_CAPSULE_BYTES: u64 = 16;

/// Aggregated transport counters, transport-agnostic so reports can
/// quote them without downcasting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request messages offered (router → shard).
    pub requests: u64,
    /// Response messages offered (shard → router).
    pub responses: u64,
    /// Messages lost in transit (seeded drops), both directions.
    pub dropped: u64,
    /// Messages swallowed by partitions, both directions.
    pub partition_drops: u64,
    /// Messages duplicated on the wire.
    pub duplicated: u64,
    /// Sends that stalled on a full transport queue.
    pub queue_stalls: u64,
    /// Payload bytes offered, both directions.
    pub bytes: u64,
}

/// A bidirectional message transport between the router and shard
/// index `shard` (see module docs).
pub trait Transport: std::fmt::Debug + Send {
    /// Offers a request of `bytes` to `shard`, sent at `now`; the
    /// returned [`Delivery`] carries the arrival instant (`None` when
    /// the message was lost) plus any duplicated copy's arrival.
    fn request(&mut self, now: SimTime, shard: usize, bytes: u64) -> Delivery;

    /// Offers a response of `bytes` from `shard` back to the router;
    /// same [`Delivery`] contract as [`Self::request`].
    fn response(&mut self, now: SimTime, shard: usize, bytes: u64) -> Delivery;

    /// True while the link to `shard` is known-partitioned: every
    /// message either way will be swallowed. Hedging uses this to skip
    /// a spare leg that could only be wasted; the data path does *not*
    /// consult it (a partition is discovered the honest way, by legs
    /// timing out). Defaults to `false` (an in-process transport never
    /// partitions).
    fn is_partitioned(&self, shard: usize) -> bool {
        let _ = shard;
        false
    }

    /// A shard joined: attach its link at the end of the index space.
    fn on_add_shard(&mut self);

    /// Shard index `idx` left: detach its link (later indices shift
    /// down by one, mirroring the cluster's shard vector).
    fn on_remove_shard(&mut self, idx: usize);

    /// Aggregated counters (all zero for a transport that never
    /// queues, delays, or loses anything).
    fn stats(&self) -> TransportStats;

    /// The underlying fabric, when this transport is one — the hook
    /// tests and experiments use to partition or reshape links mid-run
    /// without downcasting machinery. Defaults to `None`.
    fn fabric_mut(&mut self) -> Option<&mut kvssd_fabric::Fabric> {
        None
    }
}

/// The zero-cost default: requests and responses arrive the instant
/// they are sent, nothing is ever lost, nothing is counted. A cluster
/// on `InProcess` is byte-identical to the pre-transport code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn request(&mut self, now: SimTime, _shard: usize, _bytes: u64) -> Delivery {
        Delivery {
            delivered: Some(now),
            duplicate: None,
            admitted: now,
        }
    }

    fn response(&mut self, now: SimTime, _shard: usize, _bytes: u64) -> Delivery {
        Delivery {
            delivered: Some(now),
            duplicate: None,
            admitted: now,
        }
    }

    fn on_add_shard(&mut self) {}

    fn on_remove_shard(&mut self, _idx: usize) {}

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

impl Transport for kvssd_fabric::Fabric {
    fn request(&mut self, now: SimTime, shard: usize, bytes: u64) -> Delivery {
        self.request_delivery(now, shard, bytes)
    }

    fn response(&mut self, now: SimTime, shard: usize, bytes: u64) -> Delivery {
        self.response_delivery(now, shard, bytes)
    }

    fn is_partitioned(&self, shard: usize) -> bool {
        kvssd_fabric::Fabric::is_partitioned(self, shard)
    }

    fn on_add_shard(&mut self) {
        self.add_link();
    }

    fn on_remove_shard(&mut self, idx: usize) {
        self.remove_link(idx);
    }

    fn stats(&self) -> TransportStats {
        let s = kvssd_fabric::Fabric::stats(self);
        TransportStats {
            requests: s.requests,
            responses: s.responses,
            dropped: s.dropped,
            partition_drops: s.partition_drops,
            duplicated: s.duplicated,
            queue_stalls: s.queue_stalls,
            bytes: s.bytes,
        }
    }

    fn fabric_mut(&mut self) -> Option<&mut kvssd_fabric::Fabric> {
        Some(self)
    }
}

/// How `retrieve` fans legs out to a key's replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFanout {
    /// One leg to every replica (the seed behavior — free on an
    /// in-process transport, wasteful on a paid fabric).
    All,
    /// Legs to the first `read_quorum` replicas only; with `hedge`
    /// set, a spare leg goes to the next unused replica when the
    /// quorum ack would otherwise land after `now + hedge` (classic
    /// hedged requests, evaluated in virtual time).
    Lean {
        /// Hedge delay; `None` disables the spare leg.
        hedge: Option<SimDuration>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_is_free_and_lossless() {
        let mut t = InProcess;
        let at = SimTime::from_nanos(12345);
        assert_eq!(t.request(at, 3, 1 << 20).delivered, Some(at));
        assert_eq!(t.response(at, 0, 0).delivered, Some(at));
        assert_eq!(t.stats(), TransportStats::default());
        assert!(!t.is_partitioned(3));
    }

    #[test]
    fn fabric_maps_through_the_trait() {
        use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
        use kvssd_sim::SimDuration;

        let cfg = FabricConfig::new(
            1,
            LinkConfig {
                latency: SimDuration::from_micros(10),
                ..LinkConfig::ideal()
            },
        );
        let mut t: Box<dyn Transport> = Box::new(Fabric::new(cfg, 2));
        let arrive = t.request(SimTime::ZERO, 1, 64).delivered.unwrap();
        assert_eq!(arrive, SimTime::ZERO + SimDuration::from_micros(10));
        let s = t.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes, 64);
        assert!(!t.is_partitioned(1));
        t.fabric_mut().unwrap().partition(1);
        assert!(t.is_partitioned(1));
    }
}
