//! Sharded multi-device scale-out layer for the KV-SSD study.
//!
//! The paper characterizes one PM983; production deployments of
//! hash-partitioned stores (the Aerospike shape) spread keys over many
//! devices. This crate is the host-side shard router that lets every
//! experiment in the repo run at cluster scale:
//!
//! * [`HashRing`] — consistent-hash key→shard placement with virtual
//!   nodes, deterministic from a seed, with exact moved-fraction
//!   accounting when shards join or leave,
//! * [`KvCluster`] — N independent [`kvssd_core::KvSsd`] devices sharing
//!   one virtual clock, each behind its own NVMe submission queue
//!   ([`kvssd_nvme::SubmissionQueue`]), with fan-out/fan-in completion
//!   handling ([`kvssd_sim::FanIn`]) so concurrent operations on
//!   different shards overlap in virtual time,
//! * cluster-level metrics: merged latency histograms plus per-shard and
//!   aggregate bandwidth series, and a byte-stable [`ClusterReport`]
//!   table for determinism checks,
//! * R-way replication: [`HashRing::replica_set`] places every key on
//!   the first R distinct shards past its hash, operations fan out to
//!   the whole set and acknowledge at configurable read/write quorums,
//!   and membership changes repair placement (re-replicate from a
//!   surviving copy, demote misplaced replicas),
//! * a pluggable router↔shard [`Transport`]: the in-process default is
//!   free and lossless (byte-identical to the pre-transport path),
//!   while a [`kvssd_fabric::Fabric`] charges per-link latency,
//!   serialization, and queueing and injects seeded faults — with lean
//!   quorum reads and hedged spare legs
//!   ([`ClusterConfig::lean_reads`]) to tame stragglers.
//!
//! A 1-shard cluster behind the default pass-through submission queue is
//! *bit-identical* to a bare device: same seed, same virtual-time
//! results. That degenerate-equivalence property is what anchors the
//! scale-out numbers to the single-device reproduction.
//!
//! # Example
//!
//! ```
//! use kvssd_cluster::{ClusterConfig, KvCluster};
//! use kvssd_core::Payload;
//! use kvssd_sim::SimTime;
//!
//! let mut cluster = KvCluster::for_test(4);
//! let t = cluster
//!     .store(SimTime::ZERO, b"user:42", Payload::synthetic(512, 7))
//!     .unwrap();
//! let l = cluster.retrieve(t, b"user:42").unwrap();
//! assert!(l.value.is_some());
//! assert_eq!(cluster.len(), 1);
//! # let _ = ClusterConfig::default();
//!
//! // Three-way replication with majority quorums: the key lands on
//! // three shards, and a quorum read survives losing any one of them.
//! let mut replicated = KvCluster::for_test_replicated(4, 3);
//! let t = replicated
//!     .store(SimTime::ZERO, b"user:42", Payload::synthetic(512, 7))
//!     .unwrap();
//! assert_eq!(replicated.replica_routes(b"user:42").unwrap().len(), 3);
//! let victim = replicated.shards()[replicated.route(b"user:42").unwrap()].id();
//! let rep = replicated.remove_shard(t, victim).unwrap();
//! let l = replicated.retrieve(rep.completed, b"user:42").unwrap();
//! assert!(l.value.is_some());
//! ```

pub mod cluster;
pub mod config;
pub mod ring;
pub mod transport;

pub use cluster::{ClusterReport, ClusterStats, KvCluster, RebalanceReport, Shard};
pub use config::ClusterConfig;
pub use ring::{HashRing, RingDelta};
pub use transport::{
    InProcess, ReadFanout, Transport, TransportStats, REQUEST_CAPSULE_BYTES, RESPONSE_CAPSULE_BYTES,
};
