//! Consistent-hash placement with virtual nodes.
//!
//! Each shard owns `vnodes_per_shard` pseudo-random points on a 64-bit
//! ring; a key belongs to the shard owning the first point at or after
//! the key's hash (wrapping). Placement is deterministic from the
//! configured seed, so the same workload seed always yields the same
//! key→shard map — the property every determinism test leans on.
//!
//! When membership changes, [`RingDelta`] reports the *exact* fraction
//! of the hash space whose owner changed, computed by walking the merged
//! arc boundaries of the old and new rings (not by sampling). With
//! virtual nodes, adding one shard to N moves ≈ 1/(N+1) of the space —
//! the consistent-hashing promise — and the cluster's rebalance
//! accounting checks actual moved keys against that figure.

use kvssd_sim::mix64;

/// Exact ownership difference between two ring states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingDelta {
    /// Fraction of the 64-bit hash space whose owner changed.
    pub moved_fraction: f64,
    /// Number of contiguous arcs that changed owner.
    pub moved_arcs: usize,
}

/// The consistent-hash ring (see module docs).
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes_per_shard: usize,
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring for `shard_ids` with `vnodes_per_shard` points each.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes_per_shard` is zero.
    pub fn new(seed: u64, vnodes_per_shard: usize, shard_ids: &[usize]) -> Self {
        assert!(vnodes_per_shard > 0, "a shard needs at least one vnode");
        let mut ring = HashRing {
            seed,
            vnodes_per_shard,
            points: Vec::with_capacity(shard_ids.len() * vnodes_per_shard),
        };
        for &id in shard_ids {
            ring.insert_points(id);
        }
        ring.points.sort_unstable();
        ring
    }

    fn vnode_point(&self, shard: usize, replica: usize, probe: u64) -> u64 {
        // Two mixing rounds decorrelate shard and replica indices; the
        // result is stable across runs for a given seed. `probe` is the
        // collision re-probe counter: 0 for the first attempt (so
        // collision-free placement is unchanged from the original
        // scheme), bumped until the point is unique on the ring.
        mix64(
            mix64(self.seed ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407))
                ^ replica as u64
                ^ probe.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    fn insert_points(&mut self, shard: usize) {
        for replica in 0..self.vnodes_per_shard {
            // Two distinct (shard, replica) pairs can hash to the same
            // u64 point; the old code pushed the duplicate and
            // `sort_unstable` then handed the whole arc to the lower
            // shard id, leaving the other vnode a zero-length arc that
            // `share_of`/`delta` accounted inconsistently. Re-probe
            // deterministically until the point is free.
            let mut probe = 0u64;
            let mut point = self.vnode_point(shard, replica, probe);
            while self.points.iter().any(|&(p, _)| p == point) {
                probe += 1;
                point = self.vnode_point(shard, replica, probe);
            }
            self.points.push((point, shard));
        }
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> usize {
        let mut ids: Vec<usize> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Sorted shard ids present on the ring.
    pub fn shard_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The shard owning hash `h`: successor point on the ring, wrapping.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn shard_for(&self, h: u64) -> usize {
        assert!(!self.points.is_empty(), "routing on an empty ring");
        match self.points.binary_search(&(h, 0)) {
            Ok(i) => self.points[i].1,
            Err(i) if i < self.points.len() => self.points[i].1,
            Err(_) => self.points[0].1,
        }
    }

    /// The first `r` *distinct* shards walking successor points from
    /// `h` (wrapping), skipping points of shards already collected. The
    /// first entry is always [`Self::shard_for`]`(h)`; the result holds
    /// `min(r, shard_count)` shards. This is the key's replica set under
    /// R-way replication.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring when `r > 0`.
    pub fn replica_set(&self, h: u64, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r);
        self.replica_set_into(h, r, &mut out);
        out
    }

    /// Allocation-free [`Self::replica_set`]: fills `out` (cleared
    /// first), reusing its capacity.
    pub fn replica_set_into(&self, h: u64, r: usize, out: &mut Vec<usize>) {
        out.clear();
        if r == 0 {
            return;
        }
        assert!(!self.points.is_empty(), "routing on an empty ring");
        let n = self.points.len();
        let start = match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) if i < n => i,
            Err(_) => 0,
        };
        for step in 0..n {
            let (_, shard) = self.points[(start + step) % n];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == r {
                    return;
                }
            }
        }
    }

    /// Exact fraction of the hash space shard `id` owns.
    pub fn share_of(&self, id: usize) -> f64 {
        let mut owned: u128 = 0;
        let n = self.points.len();
        for i in 0..n {
            if self.points[i].1 != id {
                continue;
            }
            let here = self.points[i].0;
            let prev = if i == 0 {
                self.points[n - 1].0
            } else {
                self.points[i - 1].0
            };
            // Arc (prev, here], wrapping; a single-point ring owns all.
            let len = if n == 1 {
                1u128 << 64
            } else {
                (here.wrapping_sub(prev)) as u128
            };
            owned += len;
        }
        owned as f64 / (1u128 << 64) as f64
    }

    /// Adds a shard; returns the exact ownership change.
    pub fn add_shard(&mut self, id: usize) -> RingDelta {
        let before = self.clone();
        self.insert_points(id);
        self.points.sort_unstable();
        delta(&before, self)
    }

    /// Removes a shard; returns the exact ownership change.
    pub fn remove_shard(&mut self, id: usize) -> RingDelta {
        let before = self.clone();
        self.points.retain(|&(_, s)| s != id);
        delta(&before, self)
    }
}

/// Walks the merged arc boundaries of two rings and sums the arcs whose
/// owner differs. Exact: within one merged arc, both rings' successor
/// (and therefore owner) is constant.
fn delta(old: &HashRing, new: &HashRing) -> RingDelta {
    match (old.points.is_empty(), new.points.is_empty()) {
        // Nothing owned anything on either side: nothing moved. (The
        // old code fell into the one-sided arm and reported 1.0 / 1.)
        (true, true) => {
            return RingDelta {
                moved_fraction: 0.0,
                moved_arcs: 0,
            }
        }
        // One-sided: the whole space gained or lost an owner.
        (true, false) | (false, true) => {
            return RingDelta {
                moved_fraction: 1.0,
                moved_arcs: 1,
            }
        }
        (false, false) => {}
    }
    let mut bounds: Vec<u64> = old
        .points
        .iter()
        .chain(new.points.iter())
        .map(|&(p, _)| p)
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut moved: u128 = 0;
    let mut arcs = 0usize;
    let n = bounds.len();
    for i in 0..n {
        let here = bounds[i];
        let prev = if i == 0 { bounds[n - 1] } else { bounds[i - 1] };
        let len = if n == 1 {
            1u128 << 64
        } else {
            (here.wrapping_sub(prev)) as u128
        };
        // `here` is inside the arc (prev, here], so it is a valid
        // representative for successor lookups in both rings.
        if old.shard_for(here) != new.shard_for(here) {
            moved += len;
            arcs += 1;
        }
    }
    RingDelta {
        moved_fraction: moved as f64 / (1u128 << 64) as f64,
        moved_arcs: arcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = HashRing::new(7, 64, &[0, 1, 2, 3]);
        let b = HashRing::new(7, 64, &[0, 1, 2, 3]);
        for k in 0..1_000u64 {
            let h = mix64(k);
            assert_eq!(a.shard_for(h), b.shard_for(h));
            assert!(a.shard_for(h) < 4);
        }
    }

    #[test]
    fn different_seeds_place_differently() {
        let a = HashRing::new(1, 64, &[0, 1, 2, 3]);
        let b = HashRing::new(2, 64, &[0, 1, 2, 3]);
        let diff = (0..1_000u64)
            .filter(|&k| a.shard_for(mix64(k)) != b.shard_for(mix64(k)))
            .count();
        assert!(diff > 250, "seeds should reshuffle placement ({diff})");
    }

    #[test]
    fn vnodes_balance_shares() {
        let ring = HashRing::new(11, 128, &[0, 1, 2, 3]);
        let mut total = 0.0;
        for id in 0..4 {
            let share = ring.share_of(id);
            assert!((0.10..=0.45).contains(&share), "shard {id} share {share}");
            total += share;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(3, 16, &[5]);
        assert!((ring.share_of(5) - 1.0).abs() < 1e-12);
        for k in 0..100u64 {
            assert_eq!(ring.shard_for(mix64(k)), 5);
        }
    }

    #[test]
    fn add_shard_moves_about_one_over_n_plus_one() {
        let mut ring = HashRing::new(9, 128, &[0, 1, 2]);
        let d = ring.add_shard(3);
        // Ideal is 1/4; vnode variance keeps it loose but bounded.
        assert!(
            (0.10..=0.45).contains(&d.moved_fraction),
            "moved {}",
            d.moved_fraction
        );
        // And the moved space is exactly the new shard's share.
        assert!((d.moved_fraction - ring.share_of(3)).abs() < 1e-12);
    }

    #[test]
    fn remove_shard_moves_exactly_its_share() {
        let mut ring = HashRing::new(9, 128, &[0, 1, 2, 3]);
        let share = ring.share_of(2);
        let d = ring.remove_shard(2);
        assert!((d.moved_fraction - share).abs() < 1e-12);
        assert_eq!(ring.shard_ids(), vec![0, 1, 3]);
    }

    #[test]
    fn add_then_remove_round_trips_routing() {
        let mut ring = HashRing::new(21, 64, &[0, 1]);
        let before: Vec<usize> = (0..500u64).map(|k| ring.shard_for(mix64(k))).collect();
        ring.add_shard(2);
        ring.remove_shard(2);
        let after: Vec<usize> = (0..500u64).map(|k| ring.shard_for(mix64(k))).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_cannot_route() {
        let ring = HashRing::new(0, 4, &[]);
        let _ = ring.shard_for(0);
    }

    /// Regression: a vnode point collision must re-probe, not silently
    /// hand the arc to the lower shard id. Forces the collision by
    /// occupying exactly the point the next shard's replica 2 would
    /// take; pre-fix, `insert_points` pushed the duplicate.
    #[test]
    fn vnode_point_collision_reprobes_deterministically() {
        let build = || {
            let mut ring = HashRing::new(5, 4, &[0]);
            let stolen = ring.vnode_point(1, 2, 0);
            ring.points.push((stolen, 0));
            ring.points.sort_unstable();
            (ring, stolen)
        };
        let (mut ring, stolen) = build();
        ring.add_shard(1);
        // Every point is unique: the colliding vnode re-probed away.
        let mut pts: Vec<u64> = ring.points.iter().map(|&(p, _)| p).collect();
        let before = pts.len();
        pts.sort_unstable();
        pts.dedup();
        assert_eq!(pts.len(), before, "duplicate vnode point survived");
        // The occupied point still belongs to shard 0, and shard 1 kept
        // all four of its vnodes (none was swallowed by the collision).
        assert_eq!(ring.shard_for(stolen), 0);
        assert_eq!(ring.points.iter().filter(|&&(_, s)| s == 1).count(), 4);
        // Shares still account for the full circle.
        assert!((ring.share_of(0) + ring.share_of(1) - 1.0).abs() < 1e-9);
        // And the re-probe is deterministic: rebuilding identically
        // yields the identical ring.
        let (mut again, _) = build();
        again.add_shard(1);
        assert_eq!(ring.points, again.points);
    }

    /// Regression: the delta of two empty rings is zero movement, not
    /// the pre-fix `1.0 / 1`.
    #[test]
    fn delta_of_two_empty_rings_is_zero() {
        let a = HashRing::new(0, 4, &[]);
        let b = HashRing::new(0, 4, &[]);
        let d = delta(&a, &b);
        assert_eq!(d.moved_fraction, 0.0);
        assert_eq!(d.moved_arcs, 0);
        // One-sided emptiness still means everything moved.
        let c = HashRing::new(0, 4, &[7]);
        assert_eq!(delta(&a, &c).moved_fraction, 1.0);
        assert_eq!(delta(&c, &b).moved_fraction, 1.0);
    }

    #[test]
    fn replica_set_walks_distinct_successors() {
        let ring = HashRing::new(13, 32, &[0, 1, 2, 3]);
        for k in 0..500u64 {
            let h = mix64(k);
            for r in 0..=6 {
                let set = ring.replica_set(h, r);
                assert_eq!(set.len(), r.min(4), "r={r}");
                if r > 0 {
                    assert_eq!(set[0], ring.shard_for(h));
                }
                let mut dedup = set.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), set.len(), "replica set repeated a shard");
            }
        }
    }

    #[test]
    fn replica_set_into_reuses_buffer() {
        let ring = HashRing::new(13, 32, &[0, 1, 2]);
        let mut buf = Vec::new();
        ring.replica_set_into(mix64(9), 2, &mut buf);
        let first = buf.clone();
        ring.replica_set_into(mix64(9), 2, &mut buf);
        assert_eq!(buf, first);
        ring.replica_set_into(mix64(9), 0, &mut buf);
        assert!(buf.is_empty());
    }
}
