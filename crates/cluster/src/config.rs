//! Cluster shape and placement parameters.

use kvssd_nvme::SqConfig;
use kvssd_sim::SimDuration;

use crate::transport::ReadFanout;

/// How a [`crate::KvCluster`] routes, queues, and measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Initial shard (device) count.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring. More vnodes flatten the
    /// per-shard key-share spread at the cost of a bigger ring.
    pub vnodes_per_shard: usize,
    /// Seed for ring point placement (deterministic from the workload
    /// seed so runs are reproducible end to end).
    pub seed: u64,
    /// Per-shard NVMe submission queue shape. The pass-through default
    /// keeps a 1-shard cluster bit-identical to a bare device.
    pub sq: SqConfig,
    /// Window for the per-shard and aggregate bandwidth series.
    pub bandwidth_window: SimDuration,
    /// Copies of every key (R), placed on the first R distinct shards
    /// walking the ring from the key's hash. 1 = no replication (the
    /// original single-copy behavior, bit-identical to the seed).
    pub replication_factor: usize,
    /// Replica completions a retrieve waits for before acknowledging.
    pub read_quorum: usize,
    /// Replica completions a store/delete waits for before
    /// acknowledging.
    pub write_quorum: usize,
    /// How retrieves fan out over the replica set. The default fans to
    /// every replica (free on the in-process transport); lean fanout
    /// sends `read_quorum` legs and optionally hedges a spare.
    pub read_fanout: ReadFanout,
    /// Per-leg acknowledgement deadline. `None` (the default, the seed
    /// behavior) trusts the transport: a lost leg simply never counts.
    /// With a timeout set, a leg whose acknowledgement has not arrived
    /// by `send + op_timeout` is re-issued up to [`Self::max_retries`]
    /// times with seeded exponential backoff before it counts as
    /// failed toward the quorum. On a fault-free transport no leg ever
    /// misses its deadline, so tables stay byte-identical.
    pub op_timeout: Option<SimDuration>,
    /// Re-issues allowed per leg once [`Self::op_timeout`] is set (the
    /// leg runs at most `1 + max_retries` attempts). Ignored without a
    /// timeout.
    pub max_retries: u32,
    /// Hedged/tied quorum writes: when the write quorum has not
    /// assembled by `now + hedge`, one spare (tied) leg re-sends the
    /// mutation to the slowest unacked replica, skipping
    /// known-partitioned links. The replica dedupes by op id, so the
    /// losing copy's device work is cancelled rather than silently
    /// done twice. `None` disables the spare leg.
    pub write_hedge: Option<SimDuration>,
}

impl ClusterConfig {
    /// `shards` devices with placement seed `seed`, everything else
    /// default.
    pub fn new(shards: usize, seed: u64) -> Self {
        ClusterConfig {
            shards,
            seed,
            ..Self::default()
        }
    }

    /// Sets the per-shard submission-queue shape.
    pub fn sq(mut self, sq: SqConfig) -> Self {
        self.sq = sq;
        self
    }

    /// Sets the bandwidth-series window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.bandwidth_window = window;
        self
    }

    /// Sets R-way replication with majority quorums (`⌊R/2⌋ + 1` for
    /// both reads and writes — the smallest overlap-guaranteeing
    /// choice). Override with [`Self::quorums`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn replication(mut self, r: usize) -> Self {
        assert!(r >= 1, "replication factor must be at least 1");
        self.replication_factor = r;
        self.read_quorum = r / 2 + 1;
        self.write_quorum = r / 2 + 1;
        self
    }

    /// Sets explicit read/write quorum sizes (each clamped nowhere —
    /// the cluster constructor validates `1 ≤ quorum ≤ R`).
    pub fn quorums(mut self, read: usize, write: usize) -> Self {
        self.read_quorum = read;
        self.write_quorum = write;
        self
    }

    /// Switches retrieves to lean fanout: legs to the first
    /// `read_quorum` replicas only, plus (with `hedge` set) one spare
    /// leg to the next replica when the quorum acknowledgement would
    /// land later than the hedge delay. On a paid transport this trades
    /// a small extra-read budget for straggler-proof tail latency;
    /// writes always fan to every replica for durability.
    pub fn lean_reads(mut self, hedge: Option<SimDuration>) -> Self {
        self.read_fanout = ReadFanout::Lean { hedge };
        self
    }

    /// Arms per-leg deadlines: a leg unacknowledged `timeout` after its
    /// send is re-issued up to `max_retries` times (seeded exponential
    /// backoff) before counting as failed. The retry RNG stream derives
    /// from the cluster seed, so runs stay reproducible; with a
    /// fault-free transport nothing ever times out and behavior is
    /// byte-identical to the un-deadlined cluster.
    pub fn deadlines(mut self, timeout: SimDuration, max_retries: u32) -> Self {
        self.op_timeout = Some(timeout);
        self.max_retries = max_retries;
        self
    }

    /// Arms hedged/tied quorum writes: a spare leg re-sends the
    /// mutation to the slowest unacked, un-partitioned replica when the
    /// write quorum has not assembled by the hedge delay. See
    /// [`Self::write_hedge`].
    pub fn hedged_writes(mut self, hedge: Option<SimDuration>) -> Self {
        self.write_hedge = hedge;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 1,
            vnodes_per_shard: 64,
            seed: 0,
            sq: SqConfig::passthrough(),
            bandwidth_window: SimDuration::from_millis(10),
            replication_factor: 1,
            read_quorum: 1,
            write_quorum: 1,
            read_fanout: ReadFanout::All,
            op_timeout: None,
            max_retries: 0,
            write_hedge: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_copy() {
        let c = ClusterConfig::default();
        assert_eq!(c.replication_factor, 1);
        assert_eq!(c.read_quorum, 1);
        assert_eq!(c.write_quorum, 1);
        assert_eq!(c.read_fanout, ReadFanout::All);
        assert_eq!(c.op_timeout, None);
        assert_eq!(c.max_retries, 0);
        assert_eq!(c.write_hedge, None);
    }

    #[test]
    fn deadlines_and_hedged_writes_arm_the_fields() {
        let t = SimDuration::from_micros(500);
        let h = SimDuration::from_micros(200);
        let c = ClusterConfig::new(4, 7)
            .replication(3)
            .deadlines(t, 2)
            .hedged_writes(Some(h));
        assert_eq!(c.op_timeout, Some(t));
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.write_hedge, Some(h));
        let c = c.hedged_writes(None);
        assert_eq!(c.write_hedge, None);
    }

    #[test]
    fn lean_reads_sets_fanout_and_hedge() {
        let hedge = SimDuration::from_micros(250);
        let c = ClusterConfig::new(4, 7).replication(3).lean_reads(None);
        assert_eq!(c.read_fanout, ReadFanout::Lean { hedge: None });
        let c = c.lean_reads(Some(hedge));
        assert_eq!(c.read_fanout, ReadFanout::Lean { hedge: Some(hedge) });
    }

    #[test]
    fn replication_sets_majority_quorums() {
        let c = ClusterConfig::new(4, 7).replication(3);
        assert_eq!(c.replication_factor, 3);
        assert_eq!(c.read_quorum, 2);
        assert_eq!(c.write_quorum, 2);
        let c = c.quorums(1, 3);
        assert_eq!(c.read_quorum, 1);
        assert_eq!(c.write_quorum, 3);
    }
}
