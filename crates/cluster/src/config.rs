//! Cluster shape and placement parameters.

use kvssd_nvme::SqConfig;
use kvssd_sim::SimDuration;

/// How a [`crate::KvCluster`] routes, queues, and measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Initial shard (device) count.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring. More vnodes flatten the
    /// per-shard key-share spread at the cost of a bigger ring.
    pub vnodes_per_shard: usize,
    /// Seed for ring point placement (deterministic from the workload
    /// seed so runs are reproducible end to end).
    pub seed: u64,
    /// Per-shard NVMe submission queue shape. The pass-through default
    /// keeps a 1-shard cluster bit-identical to a bare device.
    pub sq: SqConfig,
    /// Window for the per-shard and aggregate bandwidth series.
    pub bandwidth_window: SimDuration,
}

impl ClusterConfig {
    /// `shards` devices with placement seed `seed`, everything else
    /// default.
    pub fn new(shards: usize, seed: u64) -> Self {
        ClusterConfig {
            shards,
            seed,
            ..Self::default()
        }
    }

    /// Sets the per-shard submission-queue shape.
    pub fn sq(mut self, sq: SqConfig) -> Self {
        self.sq = sq;
        self
    }

    /// Sets the bandwidth-series window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.bandwidth_window = window;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 1,
            vnodes_per_shard: 64,
            seed: 0,
            sq: SqConfig::passthrough(),
            bandwidth_window: SimDuration::from_millis(10),
        }
    }
}
