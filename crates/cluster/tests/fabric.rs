//! Fabric-backed cluster properties: the degenerate-equivalence anchor
//! (an ideal fabric is the in-process transport, byte for byte), the
//! durability contract under seeded message loss and partitions
//! (acknowledged quorum writes are never lost), determinism across
//! thread counts, and the deadline/retry/hedged-write machinery —
//! quorum-failure payloads, duplicate-delivery idempotency,
//! partition-aware hedging, repair under partitions, and liveness
//! under combined faults.

use kvssd_cluster::{ClusterConfig, KvCluster};
use kvssd_core::{KvConfig, KvError, KvSsd, Payload};
use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
use kvssd_sim::{SimDuration, SimTime};

fn device(_id: usize) -> KvSsd {
    KvSsd::new(
        kvssd_flash::Geometry::small(),
        kvssd_flash::FlashTiming::pm983_like(),
        KvConfig::small(),
    )
}

fn fabric_cluster(shards: usize, r: usize, link: LinkConfig) -> KvCluster {
    KvCluster::with_transport(
        ClusterConfig::new(shards, 42).replication(r),
        Box::new(Fabric::new(FabricConfig::new(42, link), shards)),
        device,
    )
}

fn key(i: u64) -> String {
    format!("key{i:08}")
}

#[test]
fn ideal_fabric_is_the_in_process_transport_exactly() {
    // Zero-latency, infinite-bandwidth, fault-free links must reproduce
    // the in-process transport operation by operation — the anchor that
    // ties every fabric number back to the seed tables.
    let mut base = KvCluster::new(ClusterConfig::new(4, 42).replication(3), device);
    let mut fab = fabric_cluster(4, 3, LinkConfig::ideal());
    let mut tb = SimTime::ZERO;
    let mut tf = SimTime::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        tb = base
            .store(tb, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        tf = fab
            .store(tf, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        assert_eq!(tb, tf, "stores diverged at {i}");
    }
    for i in (0..200u64).step_by(7) {
        let lb = base.retrieve(tb, key(i).as_bytes()).unwrap();
        let lf = fab.retrieve(tf, key(i).as_bytes()).unwrap();
        assert_eq!(lb.at, lf.at, "retrieves diverged at {i}");
        assert_eq!(lb.value.is_some(), lf.value.is_some());
    }
    let db = base.delete(tb, key(3).as_bytes()).unwrap();
    let df = fab.delete(tf, key(3).as_bytes()).unwrap();
    assert_eq!(db, df);
    assert_eq!(base.quiesce_time(), fab.quiesce_time());
    assert_eq!(base.len(), fab.len());
}

#[test]
fn acked_quorum_writes_survive_drops() {
    // 20 % per-message loss each way. Whatever the fabric eats, the
    // contract holds: a store that returned Ok reached its write
    // quorum, so at least `write_quorum` replicas physically hold the
    // key — and a later quorum read finds the value.
    let link = LinkConfig {
        drop_ppm: 200_000,
        ..LinkConfig::ideal()
    };
    let mut c = fabric_cluster(4, 3, link);
    let wq = c.config().write_quorum;
    let mut t = SimTime::ZERO;
    let mut acked_keys = Vec::new();
    let mut unavailable = 0u64;
    for i in 0..300u64 {
        let k = key(i);
        match c.store(t, k.as_bytes(), Payload::synthetic(512, i)) {
            Ok(done) => {
                t = done;
                let holders = c.shards().iter().filter(|s| s.holds(k.as_bytes())).count();
                assert!(
                    holders >= wq,
                    "key {k} acked at quorum {wq} but only {holders} replicas hold it"
                );
                acked_keys.push(k);
            }
            Err(KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas,
                write,
            }) => {
                assert!(acked < quorum);
                assert!(write, "a failed store must flag itself as a mutation");
                assert_eq!(
                    acked_replicas.count_ones() as usize,
                    acked,
                    "lane mask must carry exactly the acked replicas"
                );
                unavailable += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        !acked_keys.is_empty() && unavailable > 0,
        "20 % loss should produce both outcomes (acked {}, unavailable {unavailable})",
        acked_keys.len()
    );
    // Every acknowledged write stays readable through the same lossy
    // fabric whenever the read itself assembles its quorum.
    let late = c.quiesce_time() + SimDuration::from_millis(1);
    for k in &acked_keys {
        match c.retrieve(late, k.as_bytes()) {
            Ok(l) => assert!(l.value.is_some(), "acked key {k} lost its value"),
            Err(KvError::QuorumUnavailable { .. }) => {} // read legs lost, not data
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn partition_loses_no_acked_writes_and_heals() {
    let mut c = fabric_cluster(4, 3, LinkConfig::ideal());
    let wq = c.config().write_quorum;
    c.fabric_mut().expect("fabric-backed").partition(1);
    let mut t = SimTime::ZERO;
    for i in 0..120u64 {
        let k = key(i);
        // Legs to the partitioned shard vanish; the two survivors in
        // every 3-replica set still form the majority, so every store
        // acks — and the holders back the ack with real copies.
        t = c
            .store(t, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
        let holders = c.shards().iter().filter(|s| s.holds(k.as_bytes())).count();
        assert!(holders >= wq, "key {k}: {holders} holders < quorum {wq}");
        assert!(
            !c.shards()[1].holds(k.as_bytes()),
            "partitioned shard executed a request"
        );
    }
    assert!(c.stats().transport.partition_drops > 0);
    c.fabric_mut().expect("fabric-backed").heal(1);
    // Healed: the shard takes writes again.
    let k = key(10_000);
    t = c
        .store(t, k.as_bytes(), Payload::synthetic(512, 1))
        .unwrap();
    let l = c.retrieve(t, k.as_bytes()).unwrap();
    assert!(l.value.is_some());
}

#[test]
fn faulty_fabric_report_is_deterministic_across_thread_counts() {
    // One seeded run's byte-stable report, reproduced on every thread
    // of a contended pool: virtual time and seeded fault streams owe
    // nothing to the host scheduler.
    let run = || -> String {
        let link = LinkConfig {
            latency: SimDuration::from_micros(15),
            jitter: SimDuration::from_micros(30),
            drop_ppm: 50_000,
            duplicate_ppm: 20_000,
            ..LinkConfig::ideal()
        };
        let mut c = fabric_cluster(4, 3, link);
        let mut t = SimTime::ZERO;
        for i in 0..150u64 {
            match c.store(t, key(i).as_bytes(), Payload::synthetic(512, i)) {
                Ok(done) => t = done,
                Err(KvError::QuorumUnavailable { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let _ = c.retrieve(c.quiesce_time(), key(42).as_bytes());
        c.report().render()
    };
    let reference = run();
    assert!(
        reference.contains("transport "),
        "faulty-fabric report must carry the transport line"
    );
    let outcomes: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(run)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run thread panicked"))
            .collect()
    });
    for o in outcomes {
        assert_eq!(o, reference, "fabric-backed run diverged across threads");
    }
}

#[test]
fn hedged_lean_reads_route_around_a_slow_replica() {
    // One link degraded to 1 ms each way. Lean reads whose quorum
    // includes it stall; the hedged spare leg caps the ack near the
    // hedge delay instead.
    let base = LinkConfig {
        latency: SimDuration::from_micros(10),
        ..LinkConfig::ideal()
    };
    let slow = LinkConfig {
        latency: SimDuration::from_millis(1),
        ..LinkConfig::ideal()
    };
    let hedge = SimDuration::from_micros(400);
    let build = |hedged: bool| {
        let mut cfg = ClusterConfig::new(8, 42).replication(3);
        cfg = cfg.lean_reads(hedged.then_some(hedge));
        let mut c = KvCluster::with_transport(
            cfg,
            Box::new(Fabric::new(FabricConfig::new(42, base), 8)),
            device,
        );
        c.fabric_mut().expect("fabric-backed").shape_link(1, slow);
        c
    };
    let mut plain = build(false);
    let mut hedged = build(true);
    let mut tp = SimTime::ZERO;
    let mut th = SimTime::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        tp = plain
            .store(tp, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
        th = hedged
            .store(th, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
    }
    // Sequential closed-loop reads so each latency is the quorum path,
    // not device queueing from a burst.
    let mut now_p = tp + SimDuration::from_millis(5);
    let mut now_h = th + SimDuration::from_millis(5);
    let mut worst_plain = SimDuration::ZERO;
    let mut worst_hedged = SimDuration::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        let lp = plain.retrieve(now_p, k.as_bytes()).unwrap();
        let lh = hedged.retrieve(now_h, k.as_bytes()).unwrap();
        assert!(lp.value.is_some() && lh.value.is_some());
        worst_plain = worst_plain.max(lp.at.since(now_p));
        worst_hedged = worst_hedged.max(lh.at.since(now_h));
        now_p = lp.at;
        now_h = lh.at;
    }
    assert!(
        hedged.hedged_spares() > 0,
        "the slow link never tripped a hedge"
    );
    assert!(
        worst_plain >= SimDuration::from_millis(2),
        "unhedged worst case should eat the slow RTT, got {worst_plain}"
    );
    assert!(
        worst_hedged < SimDuration::from_millis(2),
        "hedged worst case should duck the slow RTT, got {worst_hedged}"
    );
}

#[test]
fn quorum_unavailable_payload_names_the_acked_lanes() {
    // Seeded 20 % loss each way. Every quorum failure must say exactly
    // which replica lanes acked: each lane bit in the mask maps to a
    // replica that really acknowledged (and for stores, therefore
    // physically holds the key), writes flag partial replication,
    // reads do not.
    let link = LinkConfig {
        drop_ppm: 200_000,
        ..LinkConfig::ideal()
    };
    let mut c = fabric_cluster(6, 3, link);
    let mut t = SimTime::ZERO;
    let mut failed_stores = 0u64;
    let mut partially_replicated = 0u64;
    for i in 0..300u64 {
        let k = key(i);
        match c.store(t, k.as_bytes(), Payload::synthetic(512, i)) {
            Ok(done) => t = done,
            Err(KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas,
                write,
            }) => {
                failed_stores += 1;
                assert!(acked < quorum);
                assert!(write, "a failed store must flag itself as a mutation");
                assert_eq!(acked_replicas.count_ones() as usize, acked);
                let routes = c.replica_routes(k.as_bytes()).unwrap();
                for (lane, &idx) in routes.iter().enumerate() {
                    if acked_replicas & (1 << lane) != 0 {
                        assert!(
                            c.shards()[idx].holds(k.as_bytes()),
                            "lane {lane} acked store of {k} but shard {idx} does not hold it"
                        );
                    }
                }
                if acked > 0 {
                    partially_replicated += 1;
                    let msg = KvError::QuorumUnavailable {
                        acked,
                        quorum,
                        acked_replicas,
                        write,
                    }
                    .to_string();
                    assert!(
                        msg.contains("partially replicated"),
                        "write failures with acks must warn about partial replication: {msg}"
                    );
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        failed_stores > 0 && partially_replicated > 0,
        "20 % loss should produce partially replicated failures \
         (failed {failed_stores}, partial {partially_replicated})"
    );
    let late = c.quiesce_time() + SimDuration::from_millis(1);
    let mut failed_reads = 0u64;
    for i in 0..300u64 {
        match c.retrieve(late, key(i).as_bytes()) {
            Ok(_) => {}
            Err(KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas,
                write,
            }) => {
                failed_reads += 1;
                assert!(acked < quorum);
                assert!(!write, "a failed retrieve must not flag a mutation");
                assert_eq!(acked_replicas.count_ones() as usize, acked);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(failed_reads > 0, "20 % loss should fail some reads");
}

#[test]
fn duplicate_deliveries_are_idempotent_at_the_replica() {
    // Every message duplicated on the wire: each store leg arrives
    // twice at its replica, yet the device must execute it exactly
    // once — the second delivery is deduped by op id and re-acks the
    // recorded completion.
    let link = LinkConfig {
        duplicate_ppm: 1_000_000,
        ..LinkConfig::ideal()
    };
    let mut c = fabric_cluster(4, 3, link);
    let mut t = SimTime::ZERO;
    for i in 0..50u64 {
        t = c
            .store(t, key(i).as_bytes(), Payload::synthetic(512, i))
            .unwrap();
    }
    assert_eq!(
        c.stats().devices.stores,
        150,
        "duplicated store legs must not re-execute on the device"
    );
    assert_eq!(c.len(), 150, "every replica holds exactly one copy");
    assert_eq!(
        c.dup_suppressed(),
        150,
        "each of the 150 duplicated request legs deduped exactly once"
    );
    // Updates stay idempotent too: re-storing the same keys must not
    // inflate the key population.
    for i in 0..50u64 {
        t = c
            .store(t, key(i).as_bytes(), Payload::synthetic(256, i + 1000))
            .unwrap();
    }
    assert_eq!(c.len(), 150, "duplicated updates must not duplicate keys");
    // Deletes dedupe by the same mechanism.
    let (t2, existed) = c.delete(t, key(7).as_bytes()).unwrap();
    assert!(existed);
    assert_eq!(c.stats().devices.deletes, 3, "one delete per replica");
    assert_eq!(c.len(), 147);
    let l = c.retrieve(t2, key(7).as_bytes()).unwrap();
    assert!(l.value.is_none());
}

#[test]
fn hedged_read_spare_skips_partitioned_links() {
    // R = 4 with lean quorum-2 reads: legs go to lanes 0 and 1, spares
    // come from lanes 2 and 3. Partition lane 0 (to starve the quorum)
    // and lane 2 (the first spare candidate): the hedge must skip the
    // dead lane-2 link and win through lane 3.
    let mk = || {
        KvCluster::with_transport(
            ClusterConfig::new(8, 42)
                .replication(4)
                .quorums(2, 3)
                .lean_reads(Some(SimDuration::from_micros(100))),
            Box::new(Fabric::new(FabricConfig::new(42, LinkConfig::ideal()), 8)),
            device,
        )
    };
    let mut c = mk();
    let k = key(0);
    let t = c
        .store(SimTime::ZERO, k.as_bytes(), Payload::synthetic(512, 0))
        .unwrap();
    let routes = c.replica_routes(k.as_bytes()).unwrap();
    assert_eq!(routes.len(), 4);
    {
        let f = c.fabric_mut().expect("fabric-backed");
        f.partition(routes[0]);
        f.partition(routes[2]);
    }
    let l = c
        .retrieve(t, k.as_bytes())
        .expect("the spare must route around the partitioned candidate");
    assert!(l.value.is_some());
    assert_eq!(c.hedged_spares(), 1, "exactly one spare leg launched");
    // Control: with *every* spare candidate partitioned the hedge is
    // never launched (it could only be wasted) and the read fails
    // typed with the one surviving ack in the mask.
    let mut c2 = mk();
    let t2 = c2
        .store(SimTime::ZERO, k.as_bytes(), Payload::synthetic(512, 0))
        .unwrap();
    {
        let f = c2.fabric_mut().expect("fabric-backed");
        f.partition(routes[0]);
        f.partition(routes[2]);
        f.partition(routes[3]);
    }
    match c2.retrieve(t2, k.as_bytes()) {
        Err(KvError::QuorumUnavailable {
            acked,
            acked_replicas,
            write,
            ..
        }) => {
            assert_eq!(acked, 1, "only the lane-1 leg can ack");
            assert_eq!(acked_replicas, 0b10);
            assert!(!write);
        }
        other => panic!("expected a typed quorum failure, got {other:?}"),
    }
    assert_eq!(
        c2.hedged_spares(),
        0,
        "a spare with only partitioned candidates must not launch"
    );
}

#[test]
fn repair_completes_and_accounts_failures_across_a_partition() {
    // Repair traffic rides the fabric: decommissioning a shard while
    // another survivor's link is cut must terminate (no hang), count
    // the unreachable legs as typed failures in the report, and leave
    // the cluster serviceable.
    let link = LinkConfig {
        latency: SimDuration::from_micros(10),
        ..LinkConfig::ideal()
    };
    let mut c = KvCluster::with_transport(
        ClusterConfig::new(4, 42)
            .replication(2)
            .deadlines(SimDuration::from_micros(500), 1),
        Box::new(Fabric::new(FabricConfig::new(42, link), 4)),
        device,
    );
    let mut t = SimTime::ZERO;
    for i in 0..120u64 {
        t = c
            .store(t, key(i).as_bytes(), Payload::synthetic(512, i))
            .unwrap();
    }
    c.fabric_mut().expect("fabric-backed").partition(2);
    let victim = c.shards()[1].id();
    let rep = c.remove_shard(t, victim).unwrap();
    assert!(rep.completed >= rep.started);
    assert!(
        rep.failed_copies + rep.failed_drops > 0,
        "legs into the cut link must surface as failed repair legs"
    );
    assert!(
        rep.copied_replicas > 0,
        "repair must still converge keys on surviving links"
    );
    assert!(
        c.leg_retries() > 0,
        "deadline retries must fire before a repair leg is failed"
    );
    // Heal whatever link index the partition shifted to and confirm the
    // cluster still serves reads: every key resolves Ok or typed.
    for i in 0..c.shard_count() {
        if c.fabric_mut().expect("fabric-backed").is_partitioned(i) {
            c.fabric_mut().expect("fabric-backed").heal(i);
        }
    }
    let late = c.quiesce_time() + SimDuration::from_millis(1);
    let mut found = 0u64;
    for i in 0..120u64 {
        match c.retrieve(late, key(i).as_bytes()) {
            Ok(l) => {
                if l.value.is_some() {
                    found += 1;
                }
            }
            Err(KvError::QuorumUnavailable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        found > 60,
        "most keys must survive a partitioned repair, found {found}"
    );
}

/// One closed-loop run over a lossy, partitioning fabric with
/// deadlines, retries, and hedged writes armed. Returns a byte-stable
/// summary so determinism can be asserted across threads.
fn lossy_scenario(seed: u64) -> String {
    let link = LinkConfig {
        latency: SimDuration::from_micros(15),
        jitter: SimDuration::from_micros(30),
        drop_ppm: 200_000,
        duplicate_ppm: 20_000,
        ..LinkConfig::ideal()
    };
    let mut c = KvCluster::with_transport(
        ClusterConfig::new(8, seed)
            .replication(3)
            .deadlines(SimDuration::from_millis(1), 2)
            .hedged_writes(Some(SimDuration::from_micros(200))),
        Box::new(Fabric::new(FabricConfig::new(seed, link), 8)),
        device,
    );
    let mut t = SimTime::ZERO;
    let mut ok = 0u64;
    let mut unavailable = 0u64;
    for i in 0..400u64 {
        match i {
            150 => c.fabric_mut().expect("fabric-backed").partition(2),
            250 => {
                let f = c.fabric_mut().expect("fabric-backed");
                f.heal(2);
                f.partition(5);
            }
            350 => c.fabric_mut().expect("fabric-backed").heal(5),
            _ => {}
        }
        let k = key(i % 200);
        let done = match i % 3 {
            0 => c.store(t, k.as_bytes(), Payload::synthetic(512, i)),
            1 => c.retrieve(t, k.as_bytes()).map(|l| l.at),
            _ => c.delete(t, k.as_bytes()).map(|(d, _)| d),
        };
        match done {
            Ok(at) => {
                assert!(at >= t, "an acked op never completes before it starts");
                ok += 1;
                t = at;
            }
            Err(KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas,
                ..
            }) => {
                assert!(acked < quorum);
                assert_eq!(acked_replicas.count_ones() as usize, acked);
                unavailable += 1;
            }
            Err(e) => panic!("op {i} must resolve Ok or QuorumUnavailable, got {e}"),
        }
    }
    format!(
        "seed={seed} ok={ok} unavailable={unavailable} retries={} rescued={} \
         write_spares={} dup={}\n{}",
        c.leg_retries(),
        c.retry_rescued_ops(),
        c.hedged_write_spares(),
        c.dup_suppressed(),
        c.report().render()
    )
}

#[test]
fn every_op_resolves_under_drops_partitions_and_deadlines() {
    // The lost-leg black hole, closed: 20 % loss, wire duplicates, and
    // roaming partitions, with per-op deadlines and hedged writes
    // armed. Every op resolves Ok or with a typed quorum failure (the
    // per-op asserts live in `lossy_scenario`), retries rescue real
    // quorums, and the whole story is deterministic across seeds and
    // 1/2/4 concurrent runs.
    for seed in [1u64, 7, 13] {
        let reference = lossy_scenario(seed);
        assert!(
            reference.contains("rescued="),
            "summary must quote rescue counters: {reference}"
        );
        let rescued: u64 = reference
            .split("rescued=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("summary carries rescued=N");
        assert!(
            rescued > 0,
            "seed {seed}: retries should rescue some quorums\n{reference}"
        );
        for threads in [2usize, 4] {
            let outcomes: Vec<String> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| s.spawn(move || lossy_scenario(seed)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("run thread panicked"))
                    .collect()
            });
            for o in outcomes {
                assert_eq!(
                    o, reference,
                    "seed {seed} diverged across {threads} threads"
                );
            }
        }
    }
}
