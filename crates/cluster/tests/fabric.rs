//! Fabric-backed cluster properties: the degenerate-equivalence anchor
//! (an ideal fabric is the in-process transport, byte for byte), the
//! durability contract under seeded message loss and partitions
//! (acknowledged quorum writes are never lost), and determinism across
//! thread counts.

use kvssd_cluster::{ClusterConfig, KvCluster};
use kvssd_core::{KvConfig, KvError, KvSsd, Payload};
use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
use kvssd_sim::{SimDuration, SimTime};

fn device(_id: usize) -> KvSsd {
    KvSsd::new(
        kvssd_flash::Geometry::small(),
        kvssd_flash::FlashTiming::pm983_like(),
        KvConfig::small(),
    )
}

fn fabric_cluster(shards: usize, r: usize, link: LinkConfig) -> KvCluster {
    KvCluster::with_transport(
        ClusterConfig::new(shards, 42).replication(r),
        Box::new(Fabric::new(FabricConfig::new(42, link), shards)),
        device,
    )
}

fn key(i: u64) -> String {
    format!("key{i:08}")
}

#[test]
fn ideal_fabric_is_the_in_process_transport_exactly() {
    // Zero-latency, infinite-bandwidth, fault-free links must reproduce
    // the in-process transport operation by operation — the anchor that
    // ties every fabric number back to the seed tables.
    let mut base = KvCluster::new(ClusterConfig::new(4, 42).replication(3), device);
    let mut fab = fabric_cluster(4, 3, LinkConfig::ideal());
    let mut tb = SimTime::ZERO;
    let mut tf = SimTime::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        tb = base
            .store(tb, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        tf = fab
            .store(tf, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        assert_eq!(tb, tf, "stores diverged at {i}");
    }
    for i in (0..200u64).step_by(7) {
        let lb = base.retrieve(tb, key(i).as_bytes()).unwrap();
        let lf = fab.retrieve(tf, key(i).as_bytes()).unwrap();
        assert_eq!(lb.at, lf.at, "retrieves diverged at {i}");
        assert_eq!(lb.value.is_some(), lf.value.is_some());
    }
    let db = base.delete(tb, key(3).as_bytes()).unwrap();
    let df = fab.delete(tf, key(3).as_bytes()).unwrap();
    assert_eq!(db, df);
    assert_eq!(base.quiesce_time(), fab.quiesce_time());
    assert_eq!(base.len(), fab.len());
}

#[test]
fn acked_quorum_writes_survive_drops() {
    // 20 % per-message loss each way. Whatever the fabric eats, the
    // contract holds: a store that returned Ok reached its write
    // quorum, so at least `write_quorum` replicas physically hold the
    // key — and a later quorum read finds the value.
    let link = LinkConfig {
        drop_ppm: 200_000,
        ..LinkConfig::ideal()
    };
    let mut c = fabric_cluster(4, 3, link);
    let wq = c.config().write_quorum;
    let mut t = SimTime::ZERO;
    let mut acked_keys = Vec::new();
    let mut unavailable = 0u64;
    for i in 0..300u64 {
        let k = key(i);
        match c.store(t, k.as_bytes(), Payload::synthetic(512, i)) {
            Ok(done) => {
                t = done;
                let holders = c.shards().iter().filter(|s| s.holds(k.as_bytes())).count();
                assert!(
                    holders >= wq,
                    "key {k} acked at quorum {wq} but only {holders} replicas hold it"
                );
                acked_keys.push(k);
            }
            Err(KvError::QuorumUnavailable { acked, quorum }) => {
                assert!(acked < quorum);
                unavailable += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        !acked_keys.is_empty() && unavailable > 0,
        "20 % loss should produce both outcomes (acked {}, unavailable {unavailable})",
        acked_keys.len()
    );
    // Every acknowledged write stays readable through the same lossy
    // fabric whenever the read itself assembles its quorum.
    let late = c.quiesce_time() + SimDuration::from_millis(1);
    for k in &acked_keys {
        match c.retrieve(late, k.as_bytes()) {
            Ok(l) => assert!(l.value.is_some(), "acked key {k} lost its value"),
            Err(KvError::QuorumUnavailable { .. }) => {} // read legs lost, not data
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn partition_loses_no_acked_writes_and_heals() {
    let mut c = fabric_cluster(4, 3, LinkConfig::ideal());
    let wq = c.config().write_quorum;
    c.fabric_mut().expect("fabric-backed").partition(1);
    let mut t = SimTime::ZERO;
    for i in 0..120u64 {
        let k = key(i);
        // Legs to the partitioned shard vanish; the two survivors in
        // every 3-replica set still form the majority, so every store
        // acks — and the holders back the ack with real copies.
        t = c
            .store(t, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
        let holders = c.shards().iter().filter(|s| s.holds(k.as_bytes())).count();
        assert!(holders >= wq, "key {k}: {holders} holders < quorum {wq}");
        assert!(
            !c.shards()[1].holds(k.as_bytes()),
            "partitioned shard executed a request"
        );
    }
    assert!(c.stats().transport.partition_drops > 0);
    c.fabric_mut().expect("fabric-backed").heal(1);
    // Healed: the shard takes writes again.
    let k = key(10_000);
    t = c
        .store(t, k.as_bytes(), Payload::synthetic(512, 1))
        .unwrap();
    let l = c.retrieve(t, k.as_bytes()).unwrap();
    assert!(l.value.is_some());
}

#[test]
fn faulty_fabric_report_is_deterministic_across_thread_counts() {
    // One seeded run's byte-stable report, reproduced on every thread
    // of a contended pool: virtual time and seeded fault streams owe
    // nothing to the host scheduler.
    let run = || -> String {
        let link = LinkConfig {
            latency: SimDuration::from_micros(15),
            jitter: SimDuration::from_micros(30),
            drop_ppm: 50_000,
            duplicate_ppm: 20_000,
            ..LinkConfig::ideal()
        };
        let mut c = fabric_cluster(4, 3, link);
        let mut t = SimTime::ZERO;
        for i in 0..150u64 {
            match c.store(t, key(i).as_bytes(), Payload::synthetic(512, i)) {
                Ok(done) => t = done,
                Err(KvError::QuorumUnavailable { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let _ = c.retrieve(c.quiesce_time(), key(42).as_bytes());
        c.report().render()
    };
    let reference = run();
    assert!(
        reference.contains("transport "),
        "faulty-fabric report must carry the transport line"
    );
    let outcomes: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(run)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run thread panicked"))
            .collect()
    });
    for o in outcomes {
        assert_eq!(o, reference, "fabric-backed run diverged across threads");
    }
}

#[test]
fn hedged_lean_reads_route_around_a_slow_replica() {
    // One link degraded to 1 ms each way. Lean reads whose quorum
    // includes it stall; the hedged spare leg caps the ack near the
    // hedge delay instead.
    let base = LinkConfig {
        latency: SimDuration::from_micros(10),
        ..LinkConfig::ideal()
    };
    let slow = LinkConfig {
        latency: SimDuration::from_millis(1),
        ..LinkConfig::ideal()
    };
    let hedge = SimDuration::from_micros(400);
    let build = |hedged: bool| {
        let mut cfg = ClusterConfig::new(8, 42).replication(3);
        cfg = cfg.lean_reads(hedged.then_some(hedge));
        let mut c = KvCluster::with_transport(
            cfg,
            Box::new(Fabric::new(FabricConfig::new(42, base), 8)),
            device,
        );
        c.fabric_mut().expect("fabric-backed").shape_link(1, slow);
        c
    };
    let mut plain = build(false);
    let mut hedged = build(true);
    let mut tp = SimTime::ZERO;
    let mut th = SimTime::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        tp = plain
            .store(tp, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
        th = hedged
            .store(th, k.as_bytes(), Payload::synthetic(512, i))
            .unwrap();
    }
    // Sequential closed-loop reads so each latency is the quorum path,
    // not device queueing from a burst.
    let mut now_p = tp + SimDuration::from_millis(5);
    let mut now_h = th + SimDuration::from_millis(5);
    let mut worst_plain = SimDuration::ZERO;
    let mut worst_hedged = SimDuration::ZERO;
    for i in 0..200u64 {
        let k = key(i);
        let lp = plain.retrieve(now_p, k.as_bytes()).unwrap();
        let lh = hedged.retrieve(now_h, k.as_bytes()).unwrap();
        assert!(lp.value.is_some() && lh.value.is_some());
        worst_plain = worst_plain.max(lp.at.since(now_p));
        worst_hedged = worst_hedged.max(lh.at.since(now_h));
        now_p = lp.at;
        now_h = lh.at;
    }
    assert!(
        hedged.hedged_spares() > 0,
        "the slow link never tripped a hedge"
    );
    assert!(
        worst_plain >= SimDuration::from_millis(2),
        "unhedged worst case should eat the slow RTT, got {worst_plain}"
    );
    assert!(
        worst_hedged < SimDuration::from_millis(2),
        "hedged worst case should duck the slow RTT, got {worst_hedged}"
    );
}
