//! R-way replication: replica-set placement properties, quorum I/O
//! end-to-end, repair after membership changes, and the rebalance
//! barrier/quiesce regression.

use kvssd_cluster::{ClusterConfig, HashRing, KvCluster};
use kvssd_core::{KvConfig, KvSsd, Payload};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_sim::{mix64, SimDuration, SimTime};

fn small_device() -> KvSsd {
    KvSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        KvConfig::small(),
    )
}

fn fill(cluster: &mut KvCluster, n: u64) -> SimTime {
    let mut t = SimTime::ZERO;
    for i in 0..n {
        t = cluster
            .store(
                t,
                format!("rep{i:08}").as_bytes(),
                Payload::synthetic(512, i),
            )
            .unwrap();
    }
    t
}

/// Shards currently holding a replica of `key`, by registry.
fn holder_count(cluster: &KvCluster, key: &[u8]) -> usize {
    cluster.shards().iter().filter(|s| s.holds(key)).count()
}

// ---------------------------------------------------------------- ring

/// `replica_set` returns `min(r, shard_count)` distinct shards and
/// always starts with `shard_for(h)`.
#[test]
fn replica_set_size_and_head_properties() {
    for &n in &[1usize, 2, 3, 5, 8] {
        let ids: Vec<usize> = (0..n).collect();
        let ring = HashRing::new(17, 48, &ids);
        for k in 0..1_000u64 {
            let h = mix64(k);
            for r in 1..=(n + 2) {
                let set = ring.replica_set(h, r);
                assert_eq!(set.len(), r.min(n), "n={n} r={r}");
                assert_eq!(set[0], ring.shard_for(h), "n={n} r={r}");
                let mut uniq = set.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), set.len(), "repeated shard in replica set");
            }
        }
    }
}

/// Placement is a pure function of the seed.
#[test]
fn replica_set_is_deterministic_per_seed() {
    let a = HashRing::new(23, 64, &[0, 1, 2, 3, 4]);
    let b = HashRing::new(23, 64, &[0, 1, 2, 3, 4]);
    let c = HashRing::new(24, 64, &[0, 1, 2, 3, 4]);
    let mut moved = 0usize;
    for k in 0..1_000u64 {
        let h = mix64(k);
        assert_eq!(a.replica_set(h, 3), b.replica_set(h, 3));
        if a.replica_set(h, 3) != c.replica_set(h, 3) {
            moved += 1;
        }
    }
    assert!(moved > 250, "different seeds should reshuffle placement");
}

/// Adding a shard only changes replica sets that now *contain* the new
/// shard, and the surviving members keep their walk order (the old set
/// minus the displaced tail is a prefix).
#[test]
fn replica_sets_change_only_adjacent_to_an_added_shard() {
    let mut ring = HashRing::new(31, 48, &[0, 1, 2, 3]);
    let before: Vec<Vec<usize>> = (0..2_000u64)
        .map(|k| ring.replica_set(mix64(k), 3))
        .collect();
    ring.add_shard(4);
    let mut changed = 0usize;
    for (k, old) in before.iter().enumerate() {
        let new = ring.replica_set(mix64(k as u64), 3);
        if *old == new {
            continue;
        }
        changed += 1;
        assert!(
            new.contains(&4),
            "key {k}: replica set changed without involving the new shard: {old:?} -> {new:?}"
        );
        let without: Vec<usize> = new.iter().copied().filter(|&s| s != 4).collect();
        assert_eq!(
            without,
            old[..without.len()],
            "key {k}: surviving members reordered: {old:?} -> {new:?}"
        );
    }
    // Some keys must sit next to the new shard's vnodes...
    assert!(changed > 0, "adding a shard changed no replica set");
    // ...and change ⟺ adoption: a set changed exactly when the new
    // shard joined it, so `changed` matches the new shard's share of
    // 3-way placement (≈ 3/5 of keys here, never all of them).
    let adopted = (0..before.len() as u64)
        .filter(|&k| ring.replica_set(mix64(k), 3).contains(&4))
        .count();
    assert_eq!(changed, adopted, "a set changed without adopting shard 4");
    assert!(
        changed < before.len() * 3 / 4,
        "adding one shard to four rewrote {changed}/{} replica sets",
        before.len()
    );
}

/// Removing a shard only changes replica sets that contained it, and
/// the survivors keep their walk order as a prefix of the new set.
#[test]
fn replica_sets_change_only_adjacent_to_a_removed_shard() {
    let mut ring = HashRing::new(31, 48, &[0, 1, 2, 3, 4]);
    let before: Vec<Vec<usize>> = (0..2_000u64)
        .map(|k| ring.replica_set(mix64(k), 3))
        .collect();
    ring.remove_shard(2);
    for (k, old) in before.iter().enumerate() {
        let new = ring.replica_set(mix64(k as u64), 3);
        if *old == new {
            continue;
        }
        assert!(
            old.contains(&2),
            "key {k}: replica set changed without having held the removed shard: {old:?} -> {new:?}"
        );
        let survivors: Vec<usize> = old.iter().copied().filter(|&s| s != 2).collect();
        assert_eq!(
            survivors,
            new[..survivors.len()],
            "key {k}: surviving members reordered: {old:?} -> {new:?}"
        );
    }
}

// ------------------------------------------------------------- cluster

/// R = 1 replication config is the plain cluster: same completion
/// times, op for op.
#[test]
fn r1_replication_is_the_plain_cluster() {
    let mut plain = KvCluster::for_test(4);
    let mut r1 = KvCluster::for_test_replicated(4, 1);
    let mut tp = SimTime::ZERO;
    let mut tr = SimTime::ZERO;
    for i in 0..200u64 {
        let k = format!("eq{i:08}");
        tp = plain
            .store(tp, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        tr = r1
            .store(tr, k.as_bytes(), Payload::synthetic(768, i))
            .unwrap();
        assert_eq!(tp, tr, "diverged at store {i}");
    }
    let lp = plain.retrieve(tp, b"eq00000042").unwrap();
    let lr = r1.retrieve(tr, b"eq00000042").unwrap();
    assert_eq!(lp.at, lr.at);
    assert_eq!(plain.report().render(), r1.report().render());
}

/// Every key lands on min(R, N) distinct shards, registry and device
/// agreeing.
#[test]
fn stores_replicate_to_min_r_n_shards() {
    for &(n, r) in &[(2usize, 3usize), (4, 3), (4, 2), (3, 1)] {
        let mut c = KvCluster::for_test_replicated(n, r);
        fill(&mut c, 100);
        let want = r.min(n);
        for i in 0..100u64 {
            let key = format!("rep{i:08}");
            assert_eq!(
                holder_count(&c, key.as_bytes()),
                want,
                "key {key} on N={n} R={r}"
            );
            assert_eq!(c.replica_routes(key.as_bytes()).unwrap().len(), want);
        }
        assert_eq!(c.len(), 100 * want as u64);
    }
}

/// The acceptance end-to-end: R = 3 on 4 shards. After removing ANY
/// single shard, a quorum read returns the last quorum-acknowledged
/// value for every key, and repair leaves every key with exactly
/// min(R, N) = 3 live replicas on the surviving 3 shards.
#[test]
fn quorum_reads_survive_any_single_shard_removal() {
    let n_keys = 150u64;
    let victims: Vec<usize> = KvCluster::for_test_replicated(4, 3)
        .shards()
        .iter()
        .map(|s| s.id())
        .collect();
    for victim in victims {
        let mut c = KvCluster::for_test_replicated(4, 3);
        let mut t = fill(&mut c, n_keys);
        // Overwrite a slice of keys so "last acknowledged value" is not
        // just the fill value.
        for i in 0..n_keys / 3 {
            t = c
                .store(
                    t,
                    format!("rep{i:08}").as_bytes(),
                    Payload::synthetic(640, 1_000 + i),
                )
                .unwrap();
        }
        let rep = c.remove_shard(t, victim).unwrap();
        assert_eq!(c.shard_count(), 3);
        assert!(rep.copied_replicas > 0, "repair must re-replicate");
        for i in 0..n_keys {
            let key = format!("rep{i:08}");
            let l = c.retrieve(rep.completed, key.as_bytes()).unwrap();
            let expect_tag = if i < n_keys / 3 { 1_000 + i } else { i };
            match l.value {
                Some(Payload::Synthetic { tag, .. }) => assert_eq!(
                    tag, expect_tag,
                    "key {key} lost its last acknowledged value after removing {victim}"
                ),
                other => panic!("key {key} unreadable after removing {victim}: {other:?}"),
            }
            assert_eq!(
                holder_count(&c, key.as_bytes()),
                3,
                "key {key} not fully re-replicated after removing {victim}"
            );
        }
    }
}

/// `add_shard` is symmetric: keys adopt the new shard where the ring
/// says so, demoted replicas are dropped, and every key ends with
/// exactly min(R, N) copies.
#[test]
fn add_shard_demotes_and_promotes_symmetrically() {
    let mut c = KvCluster::for_test_replicated(3, 2);
    let t = fill(&mut c, 200);
    assert_eq!(c.len(), 400);
    let (id, rep) = c.add_shard(t, small_device()).unwrap();
    assert_eq!(c.shard_count(), 4);
    assert!(rep.copied_replicas > 0, "the new shard should adopt keys");
    assert!(
        rep.dropped_replicas > 0,
        "demoted replicas should be dropped"
    );
    // With R fixed, copies in == copies out.
    assert_eq!(rep.copied_replicas, rep.dropped_replicas);
    assert_eq!(c.len(), 400, "replica count must be conserved");
    let new_idx = c.shards().iter().position(|s| s.id() == id).unwrap();
    assert!(c.shards()[new_idx].key_count() > 0);
    for i in 0..200u64 {
        let key = format!("rep{i:08}");
        assert_eq!(holder_count(&c, key.as_bytes()), 2, "key {key}");
        let l = c.retrieve(rep.completed, key.as_bytes()).unwrap();
        assert!(l.value.is_some(), "key {key} unreadable after add_shard");
    }
}

/// Regression (pre-fix failure): the rebalance barrier must be covered
/// by `quiesce_time()` after `remove_shard` — the removed shard's lane
/// leaves, but every leg the report's `completed` covers ran on a
/// surviving shard.
#[test]
fn quiesce_covers_the_rebalance_barrier() {
    for r in [1usize, 3] {
        let mut c = KvCluster::for_test_replicated(3, r);
        let t = fill(&mut c, 200);
        let victim = c.shards()[1].id();
        let rep = c.remove_shard(t, victim).unwrap();
        assert!(
            c.quiesce_time() >= rep.completed,
            "R={r}: quiesce {} < rebalance barrier {}",
            c.quiesce_time(),
            rep.completed
        );
        // And again for add_shard (all lanes survive there).
        let (_, rep2) = c.add_shard(rep.completed, small_device()).unwrap();
        assert!(
            c.quiesce_time() >= rep2.completed,
            "R={r}: quiesce {} < add barrier {}",
            c.quiesce_time(),
            rep2.completed
        );
    }
}

/// Quorum choice shapes the acknowledged latency: under a burst (all
/// stores issued at the same instant, so per-shard backlogs diverge
/// and the three legs of each op finish at different times), waiting
/// for all replicas never acknowledges before a majority, which never
/// acknowledges before the fastest replica — while the total work
/// (quiesce time) is identical regardless of quorum size.
#[test]
fn quorum_size_orders_acknowledged_completion() {
    let ack_with = |wq: usize| {
        let config = ClusterConfig::new(4, 42).replication(3).quorums(1, wq);
        let mut c = KvCluster::new(config, |_| small_device());
        let mut total = SimDuration::ZERO;
        for i in 0..100u64 {
            let t = c
                .store(
                    SimTime::ZERO,
                    format!("qk{i:08}").as_bytes(),
                    Payload::synthetic(2048, i),
                )
                .unwrap();
            total += t.since(SimTime::ZERO);
        }
        (total, c.quiesce_time())
    };
    let (w1, q1) = ack_with(1);
    let (w2, q2) = ack_with(2);
    let (w3, q3) = ack_with(3);
    assert!(
        w1 < w2 && w2 < w3,
        "quorum acks out of order: {w1} {w2} {w3}"
    );
    // The quorum only moves the acknowledgement point, not the work.
    assert_eq!(q1, q2);
    assert_eq!(q2, q3);
}

/// Deletes fan out too: after a quorum delete, no replica still serves
/// the key, even after repairing around a removed shard.
#[test]
fn quorum_delete_clears_every_replica() {
    let mut c = KvCluster::for_test_replicated(4, 3);
    let t = fill(&mut c, 60);
    let (t, existed) = c.delete(t, b"rep00000007").unwrap();
    assert!(existed);
    assert_eq!(holder_count(&c, b"rep00000007"), 0);
    let l = c.retrieve(t, b"rep00000007").unwrap();
    assert!(l.value.is_none());
    let victim = c.shards()[0].id();
    let rep = c.remove_shard(t, victim).unwrap();
    let l = c.retrieve(rep.completed, b"rep00000007").unwrap();
    assert!(l.value.is_none(), "deleted key resurrected by repair");
}
