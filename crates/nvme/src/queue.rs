//! Per-shard NVMe submission queues with doorbell batching.
//!
//! A cluster front-end keeps one submission queue (SQ) per device shard.
//! The SQ bounds how many commands that shard may have outstanding
//! (`depth`, the per-shard queue depth), and models **doorbell
//! batching**: instead of one MMIO doorbell write per command, the host
//! rings once per `batch` admitted commands, so only the command that
//! opens a batch pays the doorbell cost. With the defaults
//! (`doorbell = 0`, `batch = 1`, a deep queue) the SQ is an exact
//! pass-through and a 1-shard cluster reproduces the single-device
//! timings bit for bit.
//!
//! # Example
//!
//! ```
//! use kvssd_nvme::{SqConfig, SubmissionQueue};
//! use kvssd_sim::{Resource, SimDuration, SimTime};
//!
//! let mut server = Resource::new();
//! let mut sq = SubmissionQueue::new(SqConfig { depth: 2, ..SqConfig::default() });
//! for _ in 0..4 {
//!     sq.submit(SimTime::ZERO, |issue| {
//!         server.acquire(issue, SimDuration::from_micros(10)).end
//!     });
//! }
//! // Depth 2 over a serial 10 us server: last completion at 40 us.
//! assert_eq!(sq.drain(), SimTime::ZERO + SimDuration::from_micros(40));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kvssd_sim::runner::OpTiming;
use kvssd_sim::{SimDuration, SimTime};

/// Submission-queue shape and doorbell cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqConfig {
    /// Maximum commands outstanding on this queue.
    pub depth: usize,
    /// Commands admitted per doorbell ring (1 = ring every command).
    pub batch: usize,
    /// Host cost of one doorbell MMIO write.
    pub doorbell: SimDuration,
}

impl SqConfig {
    /// Pass-through defaults: deep queue, no batching, free doorbell.
    /// A cluster built on these adds zero latency over a bare device.
    pub fn passthrough() -> Self {
        SqConfig {
            depth: 256,
            batch: 1,
            doorbell: SimDuration::ZERO,
        }
    }

    /// A batching configuration: ring the doorbell once per `batch`
    /// commands, paying `doorbell` only at batch boundaries.
    pub fn batched(depth: usize, batch: usize, doorbell: SimDuration) -> Self {
        SqConfig {
            depth,
            batch,
            doorbell,
        }
    }
}

impl Default for SqConfig {
    fn default() -> Self {
        Self::passthrough()
    }
}

/// Submission-queue counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqStats {
    /// Commands submitted through this queue.
    pub submitted: u64,
    /// Doorbell rings (≤ submitted when batching).
    pub doorbells: u64,
    /// Submissions that found the queue full and had to wait.
    pub full_stalls: u64,
    /// Total virtual time submissions spent waiting for a free slot.
    pub stall_time: SimDuration,
}

/// One shard's NVMe submission queue (see module docs).
#[derive(Debug)]
pub struct SubmissionQueue {
    config: SqConfig,
    inflight: BinaryHeap<Reverse<SimTime>>,
    batch_fill: usize,
    stats: SqStats,
    last_completion: SimTime,
}

impl SubmissionQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `batch` is zero.
    pub fn new(config: SqConfig) -> Self {
        assert!(config.depth > 0, "SQ depth must be at least 1");
        assert!(config.batch > 0, "doorbell batch must be at least 1");
        SubmissionQueue {
            config,
            inflight: BinaryHeap::new(),
            batch_fill: 0,
            stats: SqStats::default(),
            last_completion: SimTime::ZERO,
        }
    }

    /// The queue configuration.
    pub fn config(&self) -> &SqConfig {
        &self.config
    }

    /// Queue counters.
    pub fn stats(&self) -> &SqStats {
        &self.stats
    }

    /// Commands currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// Submits one command at host time `now`.
    ///
    /// If the queue is full, the host first waits (in virtual time) for
    /// the earliest outstanding completion on *this* queue. The command
    /// that opens a doorbell batch additionally pays the doorbell cost
    /// before issue. `op` receives the issue time and returns the
    /// completion time.
    pub fn submit<F>(&mut self, now: SimTime, op: F) -> OpTiming
    where
        F: FnOnce(SimTime) -> SimTime,
    {
        let mut ready = now;
        if self.inflight.len() >= self.config.depth {
            let Reverse(earliest) = self.inflight.pop().expect("inflight nonempty");
            if earliest > ready {
                self.stats.full_stalls += 1;
                self.stats.stall_time += earliest.since(ready);
                ready = earliest;
            }
        }
        if self.batch_fill == 0 {
            // Opening a new batch: ring the doorbell.
            self.stats.doorbells += 1;
            ready += self.config.doorbell;
        }
        self.batch_fill = (self.batch_fill + 1) % self.config.batch;
        let issued = ready;
        let completed = op(issued);
        assert!(
            completed >= issued,
            "command completed before it was issued (issue {issued}, complete {completed})"
        );
        self.inflight.push(Reverse(completed));
        self.stats.submitted += 1;
        self.last_completion = self.last_completion.max(completed);
        OpTiming { issued, completed }
    }

    /// Submits `ops` commands at host time `now`, returning the timing
    /// of each via `done` in submission order.
    ///
    /// Exactly equivalent to calling [`submit`](Self::submit) once per
    /// command at the same `now`: the doorbell is still paid only by the
    /// command that opens each batch (amortized once per `config.batch`
    /// admissions), full-queue stalls still charge per command, and the
    /// completion heap sees the same sequence of operations. The batch
    /// form exists so bulk drivers hand a run of commands over in one
    /// call instead of paying per-op dispatch.
    pub fn submit_batch<F, D>(&mut self, now: SimTime, count: usize, mut op: F, mut done: D)
    where
        F: FnMut(usize, SimTime) -> SimTime,
        D: FnMut(usize, OpTiming),
    {
        for i in 0..count {
            let timing = self.submit(now, |issue| op(i, issue));
            done(i, timing);
        }
    }

    /// Waits for everything outstanding; returns when the last command
    /// completed. The queue is reusable afterwards.
    pub fn drain(&mut self) -> SimTime {
        self.inflight.clear();
        self.batch_fill = 0;
        self.last_completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_sim::Resource;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn passthrough_adds_no_latency() {
        let mut server = Resource::new();
        let mut sq = SubmissionQueue::new(SqConfig::passthrough());
        let t = sq.submit(SimTime::ZERO, |issue| server.acquire(issue, us(10)).end);
        assert_eq!(t.issued, SimTime::ZERO);
        assert_eq!(t.completed, SimTime::ZERO + us(10));
    }

    #[test]
    fn depth_bounds_outstanding() {
        let mut server = Resource::new();
        let mut sq = SubmissionQueue::new(SqConfig {
            depth: 2,
            ..SqConfig::passthrough()
        });
        let mut last = OpTiming {
            issued: SimTime::ZERO,
            completed: SimTime::ZERO,
        };
        for _ in 0..4 {
            last = sq.submit(SimTime::ZERO, |issue| server.acquire(issue, us(10)).end);
        }
        // Steady-state latency at depth 2 over a serial server: 2 slots.
        assert_eq!(last.latency(), us(20));
        assert!(sq.stats().full_stalls > 0);
        assert!(sq.stats().stall_time > SimDuration::ZERO);
    }

    #[test]
    fn doorbell_paid_once_per_batch() {
        let mut server = Resource::new();
        let cfg = SqConfig::batched(8, 4, us(1));
        let mut sq = SubmissionQueue::new(cfg);
        let mut issues = Vec::new();
        for _ in 0..8 {
            issues.push(
                sq.submit(SimTime::ZERO, |issue| server.acquire(issue, us(10)).end)
                    .issued,
            );
        }
        // Commands 0 and 4 open batches and pay the doorbell; the rest
        // issue at the caller's time.
        assert_eq!(sq.stats().doorbells, 2);
        assert_eq!(issues[0], SimTime::ZERO + us(1));
        assert_eq!(issues[1], SimTime::ZERO);
        assert_eq!(issues[4], SimTime::ZERO + us(1));
    }

    #[test]
    fn drain_reports_last_completion_and_resets() {
        let mut server = Resource::new();
        let mut sq = SubmissionQueue::new(SqConfig::passthrough());
        for _ in 0..3 {
            sq.submit(SimTime::ZERO, |issue| server.acquire(issue, us(10)).end);
        }
        assert_eq!(sq.drain(), SimTime::ZERO + us(30));
        assert_eq!(sq.outstanding(), 0);
        assert_eq!(sq.drain(), SimTime::ZERO + us(30));
    }

    #[test]
    fn submit_batch_matches_sequential_submits() {
        // The batch path must be timing-equivalent to N sequential
        // submits within a doorbell batch: same per-op issue/complete
        // times, same doorbell count, same stats.
        let cfg = SqConfig::batched(4, 4, us(1));
        let mut server_a = Resource::new();
        let mut sq_a = SubmissionQueue::new(cfg);
        let mut seq = Vec::new();
        for _ in 0..12 {
            seq.push(sq_a.submit(SimTime::ZERO, |issue| server_a.acquire(issue, us(10)).end));
        }

        let mut server_b = Resource::new();
        let mut sq_b = SubmissionQueue::new(cfg);
        let mut batched = Vec::new();
        sq_b.submit_batch(
            SimTime::ZERO,
            12,
            |_, issue| server_b.acquire(issue, us(10)).end,
            |i, t| {
                assert_eq!(i, batched.len(), "completions in submission order");
                batched.push(t);
            },
        );

        assert_eq!(seq, batched, "per-op timings must match");
        assert_eq!(sq_a.stats(), sq_b.stats(), "stats must match");
        assert_eq!(sq_a.drain(), sq_b.drain(), "drain time must match");
    }

    #[test]
    fn submit_batch_stall_accounting_at_depth_boundary() {
        // A batch larger than the queue depth stalls exactly where
        // sequential submits would: command `depth` waits for the
        // earliest completion, and every stalled command charges
        // stall_time individually.
        let cfg = SqConfig {
            depth: 2,
            ..SqConfig::passthrough()
        };
        let mut server = Resource::new();
        let mut sq = SubmissionQueue::new(cfg);
        let mut timings = Vec::new();
        sq.submit_batch(
            SimTime::ZERO,
            5,
            |_, issue| server.acquire(issue, us(10)).end,
            |_, t| timings.push(t),
        );
        // Serial 10 us server behind depth 2: commands 0-1 issue at 0,
        // command i>=2 waits for completion i-2 (at 10(i-1) us).
        assert_eq!(timings[0].issued, SimTime::ZERO);
        assert_eq!(timings[1].issued, SimTime::ZERO);
        assert_eq!(timings[2].issued, SimTime::ZERO + us(10));
        assert_eq!(timings[3].issued, SimTime::ZERO + us(20));
        assert_eq!(timings[4].issued, SimTime::ZERO + us(30));
        assert_eq!(sq.stats().full_stalls, 3);
        assert_eq!(sq.stats().stall_time, us(10) + us(20) + us(30));
    }

    #[test]
    fn submit_batch_interleaves_with_submit() {
        // batch_fill carries across the two entry points: a batch opened
        // by `submit` is continued by `submit_batch` without re-ringing.
        let cfg = SqConfig::batched(8, 4, us(1));
        let mut server = Resource::new();
        let mut sq = SubmissionQueue::new(cfg);
        sq.submit(SimTime::ZERO, |issue| server.acquire(issue, us(10)).end);
        sq.submit_batch(
            SimTime::ZERO,
            3,
            |_, issue| server.acquire(issue, us(10)).end,
            |_, _| {},
        );
        assert_eq!(sq.stats().doorbells, 1, "one batch, one doorbell");
        assert_eq!(sq.stats().submitted, 4);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = SubmissionQueue::new(SqConfig {
            depth: 0,
            ..SqConfig::passthrough()
        });
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn zero_batch_rejected() {
        let _ = SubmissionQueue::new(SqConfig {
            batch: 0,
            ..SqConfig::passthrough()
        });
    }
}
