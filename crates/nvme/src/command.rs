//! KV vendor command accounting.
//!
//! Models the command-set rules the paper reverse-engineers from the
//! Samsung KV-SSD seminar material (reference `[13]`): 64 B commands,
//! 16 B inline key space, and one extra command per operation whose key
//! does not fit inline.

/// Size of one NVMe submission-queue entry in bytes.
pub const COMMAND_BYTES: u64 = 64;

/// Key bytes that fit inline in a single KV command.
pub const INLINE_KEY_BYTES: usize = 16;

/// Vendor KV opcodes carried over NVMe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOpcode {
    /// Store a key-value pair.
    Store,
    /// Retrieve a value by key.
    Retrieve,
    /// Delete a key.
    Delete,
    /// Existence check (membership query).
    Exist,
    /// Open an iterator over a 4-byte key prefix.
    IterateOpen,
    /// Fetch the next batch from an open iterator.
    IterateNext,
    /// Close an iterator.
    IterateClose,
}

/// Standard block opcodes, for the block-firmware personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOpcode {
    /// Read a logical range.
    Read,
    /// Write a logical range.
    Write,
    /// Deallocate (TRIM) a logical range.
    Deallocate,
    /// Flush the volatile write cache.
    Flush,
}

/// The rules for translating KV operations into NVMe commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCommandSet {
    /// Key bytes that ride inline in the first command.
    pub inline_key_bytes: usize,
    /// When true, multiple small operations may be consolidated into one
    /// compound command (the HotStorage '19 proposal the paper cites as
    /// `[10]`); used by the ablation benches, off for the paper baseline.
    pub compound_commands: bool,
    /// Max operations folded into one compound command when enabled.
    pub compound_batch: usize,
}

impl KvCommandSet {
    /// Samsung's shipped command set: 16 B inline keys, no compounds.
    pub fn samsung() -> Self {
        KvCommandSet {
            inline_key_bytes: INLINE_KEY_BYTES,
            compound_commands: false,
            compound_batch: 1,
        }
    }

    /// The compound-command what-if: consolidate up to `batch` small
    /// operations per command.
    pub fn with_compound(batch: usize) -> Self {
        assert!(batch >= 1, "compound batch must be at least 1");
        KvCommandSet {
            inline_key_bytes: INLINE_KEY_BYTES,
            compound_commands: true,
            compound_batch: batch,
        }
    }

    /// NVMe commands needed to convey one operation with a key of
    /// `key_len` bytes: 1, plus 1 more if the key does not fit inline.
    pub fn commands_for_key(&self, key_len: usize) -> u64 {
        if key_len <= self.inline_key_bytes {
            1
        } else {
            2
        }
    }

    /// Commands needed for a *batch* of `ops` same-sized operations.
    /// Without compound commands this is `ops * commands_for_key`; with
    /// them, ops are folded `compound_batch` at a time (keys travel in
    /// the compound payload, so the inline limit no longer multiplies).
    pub fn commands_for_batch(&self, ops: u64, key_len: usize) -> u64 {
        if self.compound_commands {
            ops.div_ceil(self.compound_batch as u64)
        } else {
            ops * self.commands_for_key(key_len)
        }
    }

    /// Total command-capsule bytes moved over the link for one operation.
    pub fn capsule_bytes(&self, key_len: usize) -> u64 {
        self.commands_for_key(key_len) * COMMAND_BYTES
    }
}

impl Default for KvCommandSet {
    fn default() -> Self {
        Self::samsung()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_boundary_is_16_bytes() {
        let cs = KvCommandSet::samsung();
        for len in 4..=16 {
            assert_eq!(cs.commands_for_key(len), 1, "len {len}");
        }
        for len in 17..=255 {
            assert_eq!(cs.commands_for_key(len), 2, "len {len}");
        }
    }

    #[test]
    fn capsule_bytes_doubles_past_inline() {
        let cs = KvCommandSet::samsung();
        assert_eq!(cs.capsule_bytes(8), 64);
        assert_eq!(cs.capsule_bytes(64), 128);
    }

    #[test]
    fn batch_without_compound_multiplies() {
        let cs = KvCommandSet::samsung();
        assert_eq!(cs.commands_for_batch(10, 16), 10);
        assert_eq!(cs.commands_for_batch(10, 32), 20);
    }

    #[test]
    fn compound_folds_ops() {
        let cs = KvCommandSet::with_compound(8);
        assert_eq!(cs.commands_for_batch(16, 200), 2);
        assert_eq!(cs.commands_for_batch(17, 200), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn compound_batch_zero_rejected() {
        let _ = KvCommandSet::with_compound(0);
    }
}
