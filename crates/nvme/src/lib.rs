//! NVMe transport model, including Samsung's vendor KV command set.
//!
//! The paper's Fig. 8 and the "host-side software stack" findings are all
//! properties of the *command set*, not the flash: each NVMe command is a
//! fixed 64 B capsule with 16 B reserved for an inline key, so any key
//! longer than 16 B needs a **second command** to carry the key — doubling
//! per-operation command processing and measurably cutting bandwidth
//! (~0.53x in the paper). This crate models the link and controller
//! front-end where that cost is paid:
//!
//! * [`KvCommandSet`] — pure accounting of how many commands an operation
//!   needs (and the compound-command what-if from HotStorage '19, the
//!   paper's reference `[10]`),
//! * [`NvmeLink`] — a PCIe transfer resource plus a command front-end
//!   resource that every command serializes through.
//!
//! # Example
//!
//! ```
//! use kvssd_nvme::KvCommandSet;
//!
//! let cs = KvCommandSet::samsung();
//! assert_eq!(cs.commands_for_key(16), 1);
//! assert_eq!(cs.commands_for_key(17), 2); // the Fig. 8 penalty
//! ```

pub mod command;
pub mod link;
pub mod queue;

pub use command::{BlockOpcode, KvCommandSet, KvOpcode, COMMAND_BYTES, INLINE_KEY_BYTES};
pub use link::{NvmeConfig, NvmeLink, NvmeStats};
pub use queue::{SqConfig, SqStats, SubmissionQueue};
