//! The NVMe link: PCIe data movement plus controller command front-end.
//!
//! Two shared resources shape host-visible behavior:
//!
//! * the **front-end**: every submitted command (including the extra
//!   key-carrying command for > 16 B keys) costs fixed firmware time to
//!   fetch, parse, and dispatch; commands serialize through it. This is
//!   the bottleneck Fig. 8 exposes.
//! * the **PCIe link**: command capsules and data payloads share link
//!   bandwidth in both directions (modeled as one full-duplex-ish
//!   resource per direction).

use kvssd_sim::{Resource, SimDuration, SimTime};

use crate::command::COMMAND_BYTES;

/// Link and front-end timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeConfig {
    /// Firmware time to fetch/parse/dispatch one command capsule.
    pub per_command: SimDuration,
    /// PCIe bandwidth per direction, bytes/second.
    pub pcie_bytes_per_sec: u64,
    /// Cost to post a completion entry back to the host.
    pub per_completion: SimDuration,
}

impl NvmeConfig {
    /// PM983-class defaults: ~2.5 us command handling, PCIe 3.0 x4
    /// (~3.2 GB/s per direction), 0.5 us completion posting.
    pub fn pm983_like() -> Self {
        NvmeConfig {
            per_command: SimDuration::from_nanos(2_500),
            pcie_bytes_per_sec: 3_200_000_000,
            per_completion: SimDuration::from_nanos(500),
        }
    }
}

impl Default for NvmeConfig {
    fn default() -> Self {
        Self::pm983_like()
    }
}

/// Link traffic counters.
#[derive(Debug, Clone, Default)]
pub struct NvmeStats {
    /// Command capsules processed.
    pub commands: u64,
    /// Data bytes moved host -> device.
    pub bytes_in: u64,
    /// Data bytes moved device -> host.
    pub bytes_out: u64,
    /// Completions posted.
    pub completions: u64,
}

/// The shared host-device transport (see module docs).
#[derive(Debug)]
pub struct NvmeLink {
    config: NvmeConfig,
    front_end: Resource,
    pcie_in: Resource,
    pcie_out: Resource,
    stats: NvmeStats,
}

impl NvmeLink {
    /// Creates an idle link.
    pub fn new(config: NvmeConfig) -> Self {
        NvmeLink {
            config,
            front_end: Resource::new(),
            pcie_in: Resource::new(),
            pcie_out: Resource::new(),
            stats: NvmeStats::default(),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NvmeConfig {
        &self.config
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NvmeStats {
        &self.stats
    }

    /// Submits an operation encoded as `commands` capsules with
    /// `payload_bytes` of host-to-device data (store/write direction).
    ///
    /// Returns when the command and its data are available to the
    /// firmware. Capsules and payload move over the inbound PCIe
    /// resource; each capsule then pays front-end processing.
    /// `commands` may be 0 for operations that ride an earlier compound
    /// capsule (the HotStorage '19 consolidation what-if): only payload
    /// moves, no front-end work.
    pub fn submit(&mut self, now: SimTime, commands: u64, payload_bytes: u64) -> SimTime {
        assert!(
            commands >= 1 || payload_bytes > 0,
            "an operation needs a command or a payload"
        );
        let wire_bytes = commands * COMMAND_BYTES + payload_bytes;
        let xfer = self.pcie_in.acquire(
            now,
            SimDuration::for_bytes(wire_bytes, self.config.pcie_bytes_per_sec),
        );
        let fe = self
            .front_end
            .acquire_after(now, xfer.end, self.config.per_command * commands);
        self.stats.commands += commands;
        self.stats.bytes_in += payload_bytes;
        fe.end
    }

    /// Returns the operation's data (`payload_bytes`, device-to-host) and
    /// posts a completion. `ready` is when the device finished the
    /// operation internally.
    ///
    /// Completion posting is DMA-engine work and does **not** occupy the
    /// command front-end: completions finish late, and funneling them
    /// through the submission pipeline would (wrongly) stall every later
    /// command behind the previous operation's completion.
    pub fn complete(&mut self, ready: SimTime, payload_bytes: u64) -> SimTime {
        let xfer = self.pcie_out.acquire(
            ready,
            SimDuration::for_bytes(payload_bytes + 16, self.config.pcie_bytes_per_sec),
        );
        self.stats.bytes_out += payload_bytes;
        self.stats.completions += 1;
        xfer.end + self.config.per_completion
    }

    /// Total front-end busy time (for utilization reporting).
    pub fn front_end_busy(&self) -> SimDuration {
        self.front_end.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> NvmeLink {
        NvmeLink::new(NvmeConfig::pm983_like())
    }

    #[test]
    fn single_command_cost_is_transfer_plus_front_end() {
        let mut l = link();
        let t = l.submit(SimTime::ZERO, 1, 0);
        let expected =
            SimDuration::for_bytes(64, l.config().pcie_bytes_per_sec) + l.config().per_command;
        assert_eq!(t.since(SimTime::ZERO), expected);
    }

    #[test]
    fn two_command_key_costs_nearly_double_front_end() {
        let mut a = link();
        let mut b = link();
        let one = a.submit(SimTime::ZERO, 1, 0).since(SimTime::ZERO);
        let two = b.submit(SimTime::ZERO, 2, 0).since(SimTime::ZERO);
        assert!(two > one);
        assert!(two.as_nanos() >= one.as_nanos() + a.config().per_command.as_nanos());
    }

    #[test]
    fn front_end_serializes_concurrent_submissions() {
        let mut l = link();
        let t1 = l.submit(SimTime::ZERO, 1, 0);
        let t2 = l.submit(SimTime::ZERO, 1, 0);
        assert!(t2 > t1);
    }

    #[test]
    fn payload_rides_the_inbound_link() {
        let mut small = link();
        let mut big = link();
        let ts = small.submit(SimTime::ZERO, 1, 4096);
        let tb = big.submit(SimTime::ZERO, 1, 1 << 20);
        assert!(tb > ts);
        assert_eq!(big.stats().bytes_in, 1 << 20);
    }

    #[test]
    fn completion_moves_data_out() {
        let mut l = link();
        let done = l.complete(SimTime::ZERO, 4096);
        assert!(done > SimTime::ZERO);
        assert_eq!(l.stats().bytes_out, 4096);
        assert_eq!(l.stats().completions, 1);
    }

    #[test]
    fn completions_do_not_block_later_submissions() {
        // A late completion must not push the front-end timeline: the
        // next submission still sees only submission traffic ahead.
        let mut a = link();
        let solo = a.submit(SimTime::ZERO, 1, 0);
        let mut b = link();
        b.complete(SimTime::ZERO + SimDuration::from_millis(5), 0);
        let after_completion = b.submit(SimTime::ZERO, 1, 0);
        assert_eq!(
            solo.since(SimTime::ZERO),
            after_completion.since(SimTime::ZERO)
        );
        assert!(b.front_end_busy() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "command or a payload")]
    fn empty_submission_rejected() {
        let mut l = link();
        let _ = l.submit(SimTime::ZERO, 0, 0);
    }

    #[test]
    fn compound_rider_pays_no_front_end() {
        let mut l = link();
        let t = l.submit(SimTime::ZERO, 0, 4096);
        assert!(t.since(SimTime::ZERO) < SimDuration::from_micros(2));
    }
}
