//! Host CPU pool and cost constants.
//!
//! The paper's CPU comparison (`dstat` on a 2x Xeon Silver 4208 host) is
//! about *host cycles spent per operation*: RocksDB burns them on
//! memtable/WAL work, compaction, comparisons, and CRCs; Aerospike on its
//! in-memory index; the KV path on little more than command marshalling.
//! [`HostCpu`] accounts those cycles on a pool of cores so utilization
//! can be reported as `busy-time / (elapsed x cores)`.

use kvssd_sim::{ResourcePool, SimDuration, SimTime};

/// A pool of host CPU cores.
#[derive(Debug)]
pub struct HostCpu {
    cores: ResourcePool,
}

impl HostCpu {
    /// Creates a pool of `cores` cores.
    pub fn new(cores: usize) -> Self {
        HostCpu {
            cores: ResourcePool::new(cores),
        }
    }

    /// Runs `work` starting no earlier than `now` on the
    /// earliest-available core; returns the completion time.
    pub fn run(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        if work.is_zero() {
            return now;
        }
        self.cores.acquire(now, work).end
    }

    /// Runs background work (compaction threads etc.): occupies a core
    /// but the caller does not wait.
    pub fn run_background(&mut self, now: SimTime, work: SimDuration) {
        if !work.is_zero() {
            self.cores.acquire(now, work);
        }
    }

    /// Total busy time across cores.
    pub fn busy_total(&self) -> SimDuration {
        self.cores.busy_total()
    }

    /// Mean utilization over `[0, until]` across cores.
    pub fn utilization(&self, until: SimTime) -> f64 {
        self.cores.utilization(until)
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }
}

/// Host-side per-operation CPU costs (calibration inputs; see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Syscall / submission overhead per I/O.
    pub syscall: SimDuration,
    /// A key comparison.
    pub compare: SimDuration,
    /// Memory copy, tenths of a nanosecond per byte (0.1 ns/B granular).
    pub memcpy_deci_ns_per_byte: u64,
    /// CRC/checksum, tenths of a nanosecond per byte.
    pub checksum_deci_ns_per_byte: u64,
}

impl CpuCosts {
    /// Xeon-Silver-class defaults: 1.5 us syscall, 80 ns compare,
    /// 0.1 ns/B copy, 0.2 ns/B checksum.
    pub fn xeon_like() -> Self {
        CpuCosts {
            syscall: SimDuration::from_nanos(1_500),
            compare: SimDuration::from_nanos(80),
            memcpy_deci_ns_per_byte: 1,
            checksum_deci_ns_per_byte: 2,
        }
    }

    /// Copy cost for `bytes`.
    pub fn memcpy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * self.memcpy_deci_ns_per_byte / 10)
    }

    /// Checksum cost for `bytes`.
    pub fn checksum(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * self.checksum_deci_ns_per_byte / 10)
    }
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self::xeon_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreground_work_serializes_on_one_core() {
        let mut cpu = HostCpu::new(1);
        let a = cpu.run(SimTime::ZERO, SimDuration::from_micros(10));
        let b = cpu.run(SimTime::ZERO, SimDuration::from_micros(10));
        assert_eq!(b.since(a), SimDuration::from_micros(10));
    }

    #[test]
    fn multiple_cores_run_in_parallel() {
        let mut cpu = HostCpu::new(4);
        let ends: Vec<SimTime> = (0..4)
            .map(|_| cpu.run(SimTime::ZERO, SimDuration::from_micros(10)))
            .collect();
        assert!(ends.iter().all(|&e| e == ends[0]));
    }

    #[test]
    fn background_work_accrues_busy_time_without_blocking() {
        let mut cpu = HostCpu::new(2);
        cpu.run_background(SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(cpu.busy_total(), SimDuration::from_millis(5));
    }

    #[test]
    fn utilization_is_fractional() {
        let mut cpu = HostCpu::new(2);
        cpu.run(SimTime::ZERO, SimDuration::from_micros(50));
        let u = cpu.utilization(SimTime::ZERO + SimDuration::from_micros(100));
        assert!((u - 0.25).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn zero_work_is_free() {
        let mut cpu = HostCpu::new(1);
        assert_eq!(cpu.run(SimTime::ZERO, SimDuration::ZERO), SimTime::ZERO);
        assert_eq!(cpu.busy_total(), SimDuration::ZERO);
    }

    #[test]
    fn cost_helpers_scale() {
        let c = CpuCosts::xeon_like();
        assert!(c.memcpy(100_000) > c.memcpy(1_000));
        assert!(c.checksum(4096) > SimDuration::ZERO);
    }
}
