//! LRU caches: the OS page cache and RocksDB's block cache.
//!
//! One [`LruCache`] implementation serves both: the experiments only need
//! presence tracking (hit/miss), capacity in entries, and strict LRU
//! eviction — contents live elsewhere in the functional models. The
//! [`PageCache`] wrapper keys by `(file, 4 KiB page index)` and converts
//! byte capacities.

use std::hash::Hash;

use kvssd_sim::PrehashedMap;

/// A strict-LRU presence cache.
///
/// Implemented as an intrusive doubly linked list over a slab, O(1) for
/// hit, insert, and eviction.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone> {
    map: PrehashedMap<K, usize>,
    nodes: Vec<Node<K>>,
    head: usize, // most recent
    tail: usize, // least recent
    free: Vec<usize>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct Node<K> {
    key: Option<K>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            map: PrehashedMap::default(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Checks (and counts) presence, promoting on hit.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Presence check without promotion or counting.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts a key as most-recent, evicting the LRU entry if full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let k = self.nodes[lru].key.take().expect("tail has a key");
            self.map.remove(&k);
            self.free.push(lru);
            evicted = Some(k);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i].key = Some(key.clone());
                i
            }
            None => {
                self.nodes.push(Node {
                    key: Some(key.clone()),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes a key if present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.nodes[idx].key = None;
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Drops every entry for which `pred` returns true.
    pub fn remove_if(&mut self, pred: impl Fn(&K) -> bool) {
        let doomed: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        for k in doomed {
            self.remove(&k);
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// The OS page cache: presence of 4 KiB pages keyed by (file, page).
#[derive(Debug)]
pub struct PageCache {
    lru: LruCache<(u64, u64)>,
}

/// Page size the cache tracks.
pub const PAGE_BYTES: u64 = 4096;

impl PageCache {
    /// Creates a page cache of `capacity_bytes` (rounded down to whole
    /// pages, minimum one page).
    pub fn new(capacity_bytes: u64) -> Self {
        PageCache {
            lru: LruCache::new(((capacity_bytes / PAGE_BYTES) as usize).max(1)),
        }
    }

    /// Checks/promotes one page of a file.
    pub fn touch(&mut self, file: u64, page: u64) -> bool {
        self.lru.touch(&(file, page))
    }

    /// Inserts one page of a file.
    pub fn insert(&mut self, file: u64, page: u64) {
        self.lru.insert((file, page));
    }

    /// Drops all pages of a file (e.g. on delete).
    pub fn invalidate_file(&mut self, file: u64) {
        self.lru.remove_if(|&(f, _)| f == file);
    }

    /// (hits, misses) since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.lru.hit_stats()
    }

    /// Resident pages.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_touch_hits() {
        let mut c = LruCache::new(2);
        c.insert("a");
        assert!(c.touch(&"a"));
        assert!(!c.touch(&"b"));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn eviction_is_strictly_lru() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        c.touch(&1); // 1 now most recent
        let evicted = c.insert(3);
        assert_eq!(evicted, Some(2));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
    }

    #[test]
    fn reinsert_promotes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(3), Some(2), "2 was LRU after 1's promotion");
    }

    #[test]
    fn remove_frees_slot() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        c.insert(3);
        c.insert(4); // evicts 2
        assert!(!c.contains(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(1);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn long_churn_preserves_invariants() {
        let mut c = LruCache::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 37);
            assert!(c.len() <= 16);
        }
        // The 16 most recent distinct keys must be present.
        let mut recent = Vec::new();
        let mut i = 9_999i64;
        while recent.len() < 16 {
            let k = (i % 37) as u64;
            if !recent.contains(&k) {
                recent.push(k);
            }
            i -= 1;
        }
        for k in recent {
            assert!(c.contains(&k), "recent key {k} evicted");
        }
    }

    #[test]
    fn page_cache_invalidates_whole_files() {
        let mut pc = PageCache::new(10 * PAGE_BYTES);
        pc.insert(1, 0);
        pc.insert(1, 1);
        pc.insert(2, 0);
        pc.invalidate_file(1);
        assert!(!pc.touch(1, 0));
        assert!(pc.touch(2, 0));
        assert_eq!(pc.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u64>::new(0);
    }
}
