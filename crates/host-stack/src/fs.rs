//! An ext4-like extent filesystem over the block-SSD.
//!
//! Provides what the paper's host stack provides to RocksDB: files backed
//! by extents, buffered writes through the OS page cache with explicit
//! `fsync`, buffered reads that hit the page cache, journaled metadata
//! operations, and — crucially for Fig. 6a — **whole-file TRIM on
//! delete**, which is what turns RocksDB's compaction deletes into
//! wholesale block invalidations inside the SSD.
//!
//! Data content is not materialized (callers keep their own functional
//! state); the filesystem tracks sizes, extents, dirty ranges, and
//! timing.

use kvssd_block_ftl::BlockSsd;
use kvssd_sim::{PrehashedMap, SimTime};

use crate::cache::{PageCache, PAGE_BYTES};
use crate::cpu::{CpuCosts, HostCpu};

/// A file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Filesystem errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Unknown file id.
    NoSuchFile(FileId),
    /// Read past the end of a file.
    ReadPastEof {
        /// The file.
        file: FileId,
        /// Requested end offset.
        end: u64,
        /// Actual file size.
        size: u64,
    },
    /// The volume is out of space.
    NoSpace,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NoSuchFile(id) => write!(f, "no such file: {}", id.0),
            FsError::ReadPastEof { file, end, size } => {
                write!(f, "read past EOF of file {} ({end} > {size})", file.0)
            }
            FsError::NoSpace => write!(f, "filesystem out of space"),
        }
    }
}

impl std::error::Error for FsError {}

/// Filesystem counters.
#[derive(Debug, Clone, Default)]
pub struct FsStats {
    /// Files created.
    pub creates: u64,
    /// Files deleted.
    pub deletes: u64,
    /// fsync calls.
    pub fsyncs: u64,
    /// Journal records written.
    pub journal_writes: u64,
    /// Bytes read through the filesystem.
    pub bytes_read: u64,
    /// Bytes written through the filesystem.
    pub bytes_written: u64,
    /// Page-cache hits on reads.
    pub cache_hits: u64,
    /// Page-cache misses (device reads).
    pub cache_misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Extent {
    dev_offset: u64,
    len: u64,
}

#[derive(Debug, Default)]
struct FileMeta {
    extents: Vec<Extent>,
    size: u64,
    /// Byte range [dirty_from, size) not yet flushed to the device.
    dirty_from: Option<u64>,
}

/// The filesystem (see module docs). Owns the block device.
#[derive(Debug)]
pub struct ExtFs {
    device: BlockSsd,
    costs: CpuCosts,
    files: PrehashedMap<FileId, FileMeta>,
    next_id: u64,
    /// Simple wilderness allocator plus a free list of holes.
    next_free: u64,
    holes: Vec<Extent>,
    journal_head: u64,
    journal_region: u64,
    stats: FsStats,
}

/// Bytes reserved at the start of the volume for the journal.
const JOURNAL_BYTES: u64 = 4 * 1024 * 1024;

impl ExtFs {
    /// Formats a filesystem over `device`.
    pub fn format(device: BlockSsd) -> Self {
        ExtFs {
            costs: CpuCosts::xeon_like(),
            files: PrehashedMap::default(),
            next_id: 1,
            next_free: JOURNAL_BYTES,
            holes: Vec::new(),
            journal_head: 0,
            journal_region: JOURNAL_BYTES,
            stats: FsStats::default(),
            device,
        }
    }

    /// Filesystem counters.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// The underlying device (e.g. for GC/stall statistics).
    pub fn device(&self) -> &BlockSsd {
        &self.device
    }

    /// Mutable device access (experiments force flushes between phases).
    pub fn device_mut(&mut self) -> &mut BlockSsd {
        &mut self.device
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.device.capacity_bytes() - self.journal_region
    }

    /// A file's current size.
    pub fn size_of(&self, file: FileId) -> Result<u64, FsError> {
        Ok(self.meta(file)?.size)
    }

    /// Creates an empty file (journaled metadata operation).
    pub fn create(&mut self, now: SimTime, cpu: &mut HostCpu) -> (SimTime, FileId) {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, FileMeta::default());
        self.stats.creates += 1;
        let t = cpu.run(now, self.costs.syscall);
        let t = self.journal_write(t);
        (t, id)
    }

    /// Appends `len` bytes, buffered: data lands in the page cache and
    /// dirty ranges; the device write happens at `fsync` (or is absorbed
    /// forever, as the OS would). Returns completion of the memcpy.
    pub fn append(
        &mut self,
        now: SimTime,
        cpu: &mut HostCpu,
        cache: &mut PageCache,
        file: FileId,
        len: u64,
    ) -> Result<SimTime, FsError> {
        let t = cpu.run(now, self.costs.syscall + self.costs.memcpy(len));
        let meta = self.files.get_mut(&file).ok_or(FsError::NoSuchFile(file))?;
        let start = meta.size;
        meta.size += len;
        if meta.dirty_from.is_none() {
            meta.dirty_from = Some(start);
        }
        for page in (start / PAGE_BYTES)..=((meta.size - 1) / PAGE_BYTES) {
            cache.insert(file.0, page);
        }
        self.stats.bytes_written += len;
        Ok(t)
    }

    /// Appends `len` bytes with O_DIRECT semantics: allocates extents and
    /// writes to the device synchronously, bypassing the page cache.
    pub fn append_direct(
        &mut self,
        now: SimTime,
        cpu: &mut HostCpu,
        file: FileId,
        len: u64,
    ) -> Result<SimTime, FsError> {
        let t = cpu.run(now, self.costs.syscall);
        self.meta(file)?;
        let start = {
            let meta = self.files.get_mut(&file).expect("checked");
            let s = meta.size;
            meta.size += len;
            s
        };
        let t = self.write_range(t, file, start, len)?;
        self.stats.bytes_written += len;
        Ok(t)
    }

    /// Reads `[offset, offset+len)` through the page cache; misses go to
    /// the device per 4 KiB page.
    pub fn read(
        &mut self,
        now: SimTime,
        cpu: &mut HostCpu,
        cache: &mut PageCache,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<SimTime, FsError> {
        assert!(len > 0, "zero-length read");
        let size = self.meta(file)?.size;
        if offset + len > size {
            return Err(FsError::ReadPastEof {
                file,
                end: offset + len,
                size,
            });
        }
        let t = cpu.run(now, self.costs.syscall + self.costs.memcpy(len));
        let mut finish = t;
        for page in (offset / PAGE_BYTES)..=((offset + len - 1) / PAGE_BYTES) {
            if cache.touch(file.0, page) {
                self.stats.cache_hits += 1;
                continue;
            }
            self.stats.cache_misses += 1;
            // Unflushed tails are served from memory even on cache miss
            // (they only exist in the page cache / dirty buffers).
            let dirty_from = self.files[&file].dirty_from.unwrap_or(u64::MAX);
            let page_start = page * PAGE_BYTES;
            if page_start >= dirty_from {
                cache.insert(file.0, page);
                continue;
            }
            let dev_off = self.resolve(file, page_start)?;
            let bytes = PAGE_BYTES.min(size - page_start);
            let done = self
                .device
                .read(t, dev_off, bytes.div_ceil(512) * 512)
                .expect("fs-mapped read");
            cache.insert(file.0, page);
            finish = finish.max(done);
        }
        self.stats.bytes_read += len;
        Ok(finish)
    }

    /// Flushes dirty data and journals the metadata (fdatasync-ish).
    pub fn fsync(
        &mut self,
        now: SimTime,
        cpu: &mut HostCpu,
        file: FileId,
    ) -> Result<SimTime, FsError> {
        let t = cpu.run(now, self.costs.syscall);
        let (from, size) = {
            let meta = self.meta(file)?;
            (meta.dirty_from, meta.size)
        };
        self.stats.fsyncs += 1;
        let mut t = t;
        if let Some(from) = from {
            if size > from {
                t = self.write_range(t, file, from, size - from)?;
            }
            self.files.get_mut(&file).expect("checked").dirty_from = None;
        }
        Ok(self.journal_write(t))
    }

    /// Deletes a file: journals the metadata, frees its extents, TRIMs
    /// them on the device, and invalidates its cached pages.
    pub fn delete(
        &mut self,
        now: SimTime,
        cpu: &mut HostCpu,
        cache: &mut PageCache,
        file: FileId,
    ) -> Result<SimTime, FsError> {
        let meta = self.files.remove(&file).ok_or(FsError::NoSuchFile(file))?;
        let mut t = cpu.run(now, self.costs.syscall);
        for e in &meta.extents {
            let aligned = e.len.div_ceil(512) * 512;
            t = self
                .device
                .trim(t, e.dev_offset, aligned)
                .expect("trim of owned extent");
            self.holes.push(*e);
        }
        cache.invalidate_file(file.0);
        self.stats.deletes += 1;
        Ok(self.journal_write(t))
    }

    // ----- internals -------------------------------------------------

    fn meta(&self, file: FileId) -> Result<&FileMeta, FsError> {
        self.files.get(&file).ok_or(FsError::NoSuchFile(file))
    }

    /// Ensures extents cover `[offset, offset+len)` and writes the range
    /// to the device.
    fn write_range(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<SimTime, FsError> {
        let covered: u64 = self.files[&file].extents.iter().map(|e| e.len).sum();
        if offset + len > covered {
            let need = offset + len - covered;
            let extent = self.allocate(need)?;
            self.files
                .get_mut(&file)
                .expect("checked")
                .extents
                .push(extent);
        }
        // Write each covered chunk (usually one extent).
        let mut t = now;
        let mut remaining = len;
        let mut pos = offset;
        while remaining > 0 {
            let dev_off = self.resolve(file, pos)?;
            let ext_room = self.extent_room(file, pos);
            let chunk = remaining.min(ext_room);
            let aligned = chunk.div_ceil(512) * 512;
            let done = self
                .device
                .write(t, dev_off, aligned)
                .expect("fs-mapped write");
            t = done;
            pos += chunk;
            remaining -= chunk;
        }
        Ok(t)
    }

    /// Allocates an extent of at least `len` bytes (512-aligned).
    fn allocate(&mut self, len: u64) -> Result<Extent, FsError> {
        let want = len.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        // First-fit in the holes.
        if let Some(i) = self.holes.iter().position(|h| h.len >= want) {
            let h = self.holes[i];
            if h.len == want {
                self.holes.swap_remove(i);
                return Ok(h);
            }
            self.holes[i] = Extent {
                dev_offset: h.dev_offset + want,
                len: h.len - want,
            };
            return Ok(Extent {
                dev_offset: h.dev_offset,
                len: want,
            });
        }
        // Wilderness.
        if self.next_free + want > self.device.capacity_bytes() {
            return Err(FsError::NoSpace);
        }
        let e = Extent {
            dev_offset: self.next_free,
            len: want,
        };
        self.next_free += want;
        Ok(e)
    }

    /// Maps a file offset to a device offset.
    fn resolve(&self, file: FileId, offset: u64) -> Result<u64, FsError> {
        let meta = self.files.get(&file).ok_or(FsError::NoSuchFile(file))?;
        let mut remaining = offset;
        for e in &meta.extents {
            if remaining < e.len {
                return Ok(e.dev_offset + remaining);
            }
            remaining -= e.len;
        }
        panic!(
            "offset {offset} of file {} beyond its extents (fs bug)",
            file.0
        );
    }

    /// Bytes remaining in the extent containing `offset`.
    fn extent_room(&self, file: FileId, offset: u64) -> u64 {
        let meta = &self.files[&file];
        let mut remaining = offset;
        for e in &meta.extents {
            if remaining < e.len {
                return e.len - remaining;
            }
            remaining -= e.len;
        }
        unreachable!("extent_room past extents");
    }

    /// One 4 KiB journal record, sequential in the journal region.
    fn journal_write(&mut self, now: SimTime) -> SimTime {
        let off = self.journal_head % (self.journal_region / PAGE_BYTES) * PAGE_BYTES;
        self.journal_head += 1;
        self.stats.journal_writes += 1;
        self.device
            .write(now, off, PAGE_BYTES)
            .expect("journal write")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_block_ftl::BlockFtlConfig;
    use kvssd_flash::{FlashTiming, Geometry};

    fn fixture() -> (ExtFs, HostCpu, PageCache) {
        let dev = BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        );
        (
            ExtFs::format(dev),
            HostCpu::new(4),
            PageCache::new(64 * PAGE_BYTES),
        )
    }

    #[test]
    fn create_append_read_round_trips() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, f, 10_000).unwrap();
        assert_eq!(fs.size_of(f).unwrap(), 10_000);
        let t = fs.read(t, &mut cpu, &mut cache, f, 0, 10_000).unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn buffered_writes_are_fast_fsync_pays_device() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let before = fs.device().stats().host_bytes_written;
        let t2 = fs.append(t, &mut cpu, &mut cache, f, 1 << 20).unwrap();
        assert_eq!(
            fs.device().stats().host_bytes_written,
            before,
            "buffered append must not touch the device"
        );
        let t3 = fs.fsync(t2, &mut cpu, f).unwrap();
        assert!(fs.device().stats().host_bytes_written >= 1 << 20);
        assert!(t3 > t2);
    }

    #[test]
    fn reads_after_eviction_hit_device() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, f, 256 * 1024).unwrap();
        let t = fs.fsync(t, &mut cpu, f).unwrap();
        // Evict by churning another file through the 64-page cache.
        let (t, f2) = fs.create(t, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, f2, 512 * 1024).unwrap();
        let misses_before = fs.stats().cache_misses;
        let _ = fs.read(t, &mut cpu, &mut cache, f, 0, 64 * 1024).unwrap();
        assert!(fs.stats().cache_misses > misses_before);
    }

    #[test]
    fn read_past_eof_rejected() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        fs.append(t, &mut cpu, &mut cache, f, 100).unwrap();
        assert!(matches!(
            fs.read(t, &mut cpu, &mut cache, f, 0, 200),
            Err(FsError::ReadPastEof { .. })
        ));
    }

    #[test]
    fn delete_trims_and_invalidates() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, f, 128 * 1024).unwrap();
        let t = fs.fsync(t, &mut cpu, f).unwrap();
        let valid_before = fs.device().valid_bytes();
        let t = fs.delete(t, &mut cpu, &mut cache, f).unwrap();
        assert!(fs.device().valid_bytes() < valid_before);
        assert!(matches!(fs.size_of(f), Err(FsError::NoSuchFile(_))));
        let _ = t;
    }

    #[test]
    fn deleted_space_is_reused() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (mut t, _) = fs.create(SimTime::ZERO, &mut cpu);
        // Fill and delete files repeatedly beyond raw capacity: reuse
        // must keep allocation succeeding.
        let chunk = fs.capacity_bytes() / 4;
        for _ in 0..8 {
            let (t2, f) = fs.create(t, &mut cpu);
            t = fs.append(t2, &mut cpu, &mut cache, f, chunk).unwrap();
            t = fs.fsync(t, &mut cpu, f).unwrap();
            t = fs.delete(t, &mut cpu, &mut cache, f).unwrap();
        }
    }

    #[test]
    fn direct_appends_bypass_cache() {
        let (mut fs, mut cpu, _cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let before = fs.device().stats().host_bytes_written;
        let t = fs.append_direct(t, &mut cpu, f, 64 * 1024).unwrap();
        assert!(fs.device().stats().host_bytes_written > before);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn unflushed_tail_reads_come_from_memory() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, f, 8 * 1024).unwrap();
        // No fsync: reads must not hit the device.
        let reads_before = fs.device().stats().host_reads;
        let _ = fs.read(t, &mut cpu, &mut cache, f, 0, 8 * 1024).unwrap();
        assert_eq!(fs.device().stats().host_reads, reads_before);
    }

    #[test]
    fn journal_writes_accumulate() {
        let (mut fs, mut cpu, _c) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        fs.fsync(t, &mut cpu, f).unwrap();
        assert!(fs.stats().journal_writes >= 2);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    fn fixture() -> (ExtFs, HostCpu, PageCache) {
        let dev = BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        );
        (
            ExtFs::format(dev),
            HostCpu::new(4),
            PageCache::new(64 * PAGE_BYTES),
        )
    }

    #[test]
    fn multi_extent_files_resolve_every_offset() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (mut t, f) = fs.create(SimTime::ZERO, &mut cpu);
        // Force multiple extents by interleaving with another file's
        // allocations.
        let (t2, other) = fs.create(t, &mut cpu);
        t = t2;
        for _ in 0..6 {
            t = fs.append(t, &mut cpu, &mut cache, f, 24 * 1024).unwrap();
            t = fs.fsync(t, &mut cpu, f).unwrap();
            t = fs.append_direct(t, &mut cpu, other, 16 * 1024).unwrap();
        }
        let size = fs.size_of(f).unwrap();
        assert_eq!(size, 6 * 24 * 1024);
        // Every page of the file reads back without panicking.
        for off in (0..size).step_by(4096) {
            t = fs
                .read(t, &mut cpu, &mut cache, f, off, 4096.min(size - off))
                .unwrap();
        }
    }

    #[test]
    fn volume_exhaustion_reports_no_space() {
        let (mut fs, mut cpu, _cache) = fixture();
        let (t, f) = fs.create(SimTime::ZERO, &mut cpu);
        let cap = fs.capacity_bytes();
        // Direct-append beyond the volume: must error, not panic.
        let mut t = t;
        let mut failed = false;
        for _ in 0..=(cap / (1 << 20)) + 1 {
            match fs.append_direct(t, &mut cpu, f, 1 << 20) {
                Ok(t2) => t = t2,
                Err(FsError::NoSpace) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(failed, "filling past capacity must report NoSpace");
    }

    #[test]
    fn delete_then_recreate_reuses_ids_distinctly() {
        let (mut fs, mut cpu, mut cache) = fixture();
        let (t, a) = fs.create(SimTime::ZERO, &mut cpu);
        let t = fs.append(t, &mut cpu, &mut cache, a, 4096).unwrap();
        let t = fs.delete(t, &mut cpu, &mut cache, a).unwrap();
        let (_, b) = fs.create(t, &mut cpu);
        assert_ne!(a, b, "file ids are never recycled");
        assert!(matches!(fs.size_of(a), Err(FsError::NoSuchFile(_))));
        assert_eq!(fs.size_of(b).unwrap(), 0);
    }
}
