//! Host-side substrate: CPU accounting, page cache, and an ext4-like
//! filesystem over the block-SSD.
//!
//! The paper's host stack is Linux: RocksDB runs on ext4 over the
//! block-SSD (with the OS page cache in between), Aerospike uses direct
//! I/O, and the KV path uses the thin SNIA KV API library. The pieces
//! here give those stacks their host-side costs:
//!
//! * [`HostCpu`] — a pool of host cores; every store charges its
//!   per-operation CPU work here, which is exactly what the paper's
//!   `dstat` CPU-utilization comparison measures (KV-SSD's headline
//!   "13x less host CPU than RocksDB").
//! * [`PageCache`] / [`LruCache`] — an OS page cache (and the same LRU
//!   structure reused for RocksDB's 10 MB block cache).
//! * [`ExtFs`] — an extent-based filesystem with journaling, buffered
//!   and direct reads/writes, fsync, and whole-file TRIM on delete (the
//!   mechanism that keeps block-SSD GC invisible under RocksDB in
//!   Fig. 6a).

pub mod cache;
pub mod cpu;
pub mod fs;

pub use cache::{LruCache, PageCache};
pub use cpu::{CpuCosts, HostCpu};
pub use fs::{ExtFs, FileId, FsError, FsStats};
