//! Umbrella crate for the KV-SSD study reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use kvssd_study::...`. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub use kvssd_bench as bench;
pub use kvssd_block_ftl as block_ftl;
pub use kvssd_cluster as cluster;
pub use kvssd_core as core;
pub use kvssd_fabric as fabric;
pub use kvssd_flash as flash;
pub use kvssd_hash_store as hash_store;
pub use kvssd_host_stack as host_stack;
pub use kvssd_kvbench as kvbench;
pub use kvssd_lsm_store as lsm_store;
pub use kvssd_nvme as nvme;
pub use kvssd_sim as sim;
