#!/usr/bin/env bash
# Tier-1 verification, runnable fully offline (the workspace has zero
# required dependencies). Pass --offline to forbid network access in
# cargo itself (CI does); without it cargo may still touch the index if
# the lockfile is stale.
#
# Usage: scripts/verify.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    CARGO_FLAGS+=(--offline)
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== kvlint (determinism / virtual-time / offline-green invariants) =="
# Per-rule summary + machine-readable kvlint-summary JSON line; exits
# non-zero on any unsuppressed violation with file:line diagnostics.
cargo run "${CARGO_FLAGS[@]}" -q -p kvssd-lint

echo "== kvlint ratchet + SARIF (panic-surface baseline must be tight) =="
# --strict fails on baseline slack too (budget above actual), so the
# committed kvlint-baseline.toml can only shrink; the SARIF 2.1.0 log
# is what CI uploads for code-scanning annotation.
mkdir -p target
cargo run "${CARGO_FLAGS[@]}" -q -p kvssd-lint -- --strict --sarif target/kvlint.sarif

echo "== cargo build --release =="
cargo build "${CARGO_FLAGS[@]}" --release --workspace

echo "== cargo test =="
cargo test "${CARGO_FLAGS[@]}" -q --workspace

echo "== cargo clippy -D warnings =="
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "== replication determinism + property suite =="
# The quorum/repair paths must stay byte-deterministic per seed and
# keep the replica-placement properties; both suites are fast.
cargo test "${CARGO_FLAGS[@]}" -q --test determinism replication
cargo test "${CARGO_FLAGS[@]}" -q -p kvssd-cluster --test replication

echo "== fabric determinism + property suite =="
# The transport must keep its contracts: seeded fault streams replay
# byte-identically at any thread count, an ideal fabric is the
# in-process transport exactly, and acked quorum writes survive
# drops/partitions.
cargo test "${CARGO_FLAGS[@]}" -q -p kvssd-fabric
cargo test "${CARGO_FLAGS[@]}" -q -p kvssd-cluster --test fabric

echo "== fault regression suite (deadlines / idempotency / partitions) =="
# The lost-leg fixes must hold: QuorumUnavailable names the acked
# lanes, duplicate deliveries dedupe at replicas, hedge spares skip
# partitioned links, repair survives partitions, and under heavy
# drops + partitions every op resolves Ok or typed — across seeds and
# 1/2/4 worker threads (the liveness property).
cargo test "${CARGO_FLAGS[@]}" -q -p kvssd-cluster --test fabric -- \
    quorum_unavailable_payload_names_the_acked_lanes \
    duplicate_deliveries_are_idempotent_at_the_replica \
    hedged_read_spare_skips_partitioned_links \
    repair_completes_and_accounts_failures_across_a_partition \
    every_op_resolves_under_drops_partitions_and_deadlines

echo "== replication smoke (tiny scale) =="
KVSSD_BENCH_SCALE=tiny \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example repro_all -- replication > /dev/null

echo "== fabric smoke (tiny scale) =="
# The hedged-vs-not slow-replica table must render (the tail-cut shape
# itself is asserted in tests/cluster_shapes.rs at the same scale).
KVSSD_BENCH_SCALE=tiny \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example repro_all -- fabric > /dev/null

echo "== fabric_faults smoke (tiny scale) =="
# The drop_ppm x timeout x retries availability sweep must render (its
# rescued/availability shapes are asserted in tests/cluster_shapes.rs
# at the same scale).
KVSSD_BENCH_SCALE=tiny \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example repro_all -- fabric_faults > /dev/null

echo "== repro_all smoke (tiny scale, timed) =="
time KVSSD_BENCH_SCALE=tiny \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example repro_all > /dev/null

echo "== golden digests (figure tables pinned at threads 1 and 4) =="
# The per-op fast path must not move a byte of any figure: the tiny
# scaleout/replication/fabric tables are pinned to fixed digests.
cargo test "${CARGO_FLAGS[@]}" -q --test golden_digests

echo "== device_ops microbench (legacy scan vs victim queue) =="
# Measures both legs in this same run and records the result in
# BENCH_HARNESS.json (the "device_ops" line is patched in place).
KVSSD_BENCH_SCALE="${KVSSD_BENCH_SCALE:-quick}" \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example device_ops

echo "== cluster_ops microbench (legacy per-op path vs batched fast path) =="
# Both legs assert identical behavior checksums in-process; the
# "cluster_ops" line in BENCH_HARNESS.json is patched in place.
KVSSD_BENCH_SCALE="${KVSSD_BENCH_SCALE:-quick}" \
    cargo run "${CARGO_FLAGS[@]}" --release -q -p kvssd-bench --example cluster_ops

echo "verify: OK"
