//! Quickstart: create a simulated KV-SSD, store/retrieve/delete pairs,
//! and read the device's own accounting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kvssd_study::core::{KvConfig, KvSsd, Payload};
use kvssd_study::flash::{FlashTiming, Geometry};
use kvssd_study::sim::SimTime;

fn main() {
    // A scaled PM983-class device: 4 GiB of flash running KV firmware.
    let mut dev = KvSsd::new(
        Geometry::pm983_scaled(),
        FlashTiming::pm983_like(),
        KvConfig::pm983_scaled(),
    );

    // Store a few pairs. Every call is virtual-time: it takes an issue
    // instant and returns the completion instant.
    let mut t = SimTime::ZERO;
    t = dev
        .store(
            t,
            b"sensor/kitchen/temp",
            Payload::from_bytes(b"21.5C".to_vec()),
        )
        .expect("store");
    t = dev
        .store(
            t,
            b"sensor/kitchen/hum",
            Payload::from_bytes(b"40%".to_vec()),
        )
        .expect("store");
    t = dev
        .store(
            t,
            b"sensor/garage/temp",
            Payload::from_bytes(b"12.0C".to_vec()),
        )
        .expect("store");

    // Point lookup.
    let lookup = dev.retrieve(t, b"sensor/kitchen/temp").expect("retrieve");
    println!(
        "retrieve sensor/kitchen/temp -> {:?} (completed at {}, latency {})",
        lookup
            .value
            .as_ref()
            .and_then(|v| v.as_bytes())
            .map(String::from_utf8_lossy),
        lookup.at,
        lookup.at.since(t),
    );
    let t = lookup.at;

    // Missing keys are a timed outcome, not an error — and the Bloom
    // filters usually answer them without touching flash.
    let missing = dev.retrieve(t, b"sensor/attic/temp").expect("retrieve");
    println!(
        "retrieve sensor/attic/temp -> {:?} (latency {})",
        missing.value,
        missing.at.since(t)
    );
    let t = missing.at;

    // Prefix iteration via the device's iterator buckets (first 4 key
    // bytes — all our keys share \"sens\").
    let (t, handle) = dev.iter_open(t, *b"sens");
    let (t, keys) = dev.iter_next(t, handle, 16).expect("iterate");
    println!("iterate 'sens' bucket -> {} keys:", keys.len());
    for k in &keys {
        println!("  {}", String::from_utf8_lossy(k));
    }
    let t = dev.iter_close(t, handle).expect("close");

    // Delete and verify.
    let (t, existed) = dev.delete(t, b"sensor/garage/temp").expect("delete");
    println!("delete sensor/garage/temp -> existed = {existed}");
    let (t, still_there) = dev.exist(t, b"sensor/garage/temp").expect("exist");
    println!("exist sensor/garage/temp -> {still_there}");

    // The device's space accounting: tiny values pay the 1 KiB
    // minimum-allocation padding the paper characterizes (Fig. 7).
    let space = dev.space();
    println!(
        "\nspace: {} user bytes on {} allocated bytes -> {:.1}x amplification",
        space.user_bytes,
        space.allocated_bytes,
        space.amplification()
    );
    println!(
        "kvps: {} / {} (device limit); virtual time elapsed: {}",
        space.kvp_count, space.max_kvps, t
    );
}
