//! Embedded IoT scenario from the paper's introduction: a gateway logging
//! many small sensor readings, choosing between a KV-SSD and host-side KV
//! stores on a block-SSD.
//!
//! The run compares host CPU (the paper's embedded-systems argument: small
//! IoT CPUs), insert latency, and — the KV-SSD's catch — space
//! amplification for tiny readings.
//!
//! ```sh
//! cargo run --release --example sensor_logger
//! ```

use kvssd_study::bench::setup;
use kvssd_study::kvbench::{run_phase, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_study::sim::SimTime;

fn main() {
    // 50k readings of ~64 B (sensor id + timestamp + value), bursts of 8.
    let readings = 50_000;
    let spec = WorkloadSpec::new("sensor-log", readings, readings)
        .mix(OpMix::InsertOnly)
        .value(ValueSize::Uniform { lo: 40, hi: 120 })
        .queue_depth(8);

    let mut systems: Vec<Box<dyn KvStore>> = vec![
        Box::new(setup::kv_ssd()),
        Box::new(setup::rocksdb()),
        Box::new(setup::aerospike()),
    ];

    println!("Logging {readings} sensor readings (40-120 B) on each stack:\n");
    let mut table = Table::new(&[
        "system",
        "mean insert (us)",
        "p99 (us)",
        "host CPU (cores)",
        "space amp",
    ]);
    let mut kv_cpu = 0.0;
    let mut rdb_cpu = 0.0;
    for store in &mut systems {
        let m = run_phase(store.as_mut(), &spec, SimTime::ZERO);
        let usage = store.space();
        table.row(&[
            store.name(),
            &format!("{:.1}", m.writes.mean().as_micros_f64()),
            &format!("{:.1}", m.writes.percentile(99.0).as_micros_f64()),
            &format!("{:.2}", m.cpu_cores_used()),
            &format!("{:.1}x", usage.amplification()),
        ]);
        match store.name() {
            "KV-SSD" => kv_cpu = m.cpu_cores_used(),
            "RocksDB" => rdb_cpu = m.cpu_cores_used(),
            _ => {}
        }
    }
    println!("{table}");
    println!(
        "The embedded-systems takeaway (paper Sec. I/V): the KV-SSD offloads\n\
         indexing to the device, using {:.0}x less host CPU than RocksDB here —\n\
         but tiny readings pay its 1 KiB padding, so batch readings into\n\
         >= 1 KiB records before storing them.",
        (rdb_cpu / kv_cpu.max(1e-9)).max(1.0)
    );
}
