//! The paper's stated future work, implemented: YCSB core workloads
//! against all three stacks.
//!
//! ```sh
//! cargo run --release --example ycsb
//! ```

use kvssd_study::bench::setup;
use kvssd_study::kvbench::{run_phase, ycsb, KvStore, Table};
use kvssd_study::sim::SimTime;

fn main() {
    let population = 30_000;
    let ops = 30_000;
    println!(
        "YCSB core workloads: {population}-record population, {ops} ops each, \
         1000 B records, Zipfian 0.99\n"
    );
    let mut table = Table::new(&[
        "workload",
        "system",
        "mean (us)",
        "p99 (us)",
        "Kops/s",
        "CPU (cores)",
    ]);
    for (name, spec_of) in [
        ("A 50r/50u", ycsb::workload_a as fn(u64, u64) -> _),
        ("B 95r/5u", ycsb::workload_b),
        ("C read-only", ycsb::workload_c),
        ("F rmw", ycsb::workload_f),
    ] {
        let mut systems: Vec<Box<dyn KvStore>> = vec![
            Box::new(setup::kv_ssd()),
            Box::new(setup::rocksdb()),
            Box::new(setup::aerospike()),
        ];
        for store in &mut systems {
            let system = store.name();
            let l = run_phase(store.as_mut(), &ycsb::load(population), SimTime::ZERO);
            let m = run_phase(store.as_mut(), &spec_of(ops, population), l.finished);
            table.row(&[
                name,
                system,
                &format!("{:.1}", m.mean_latency_us()),
                &format!(
                    "{:.1}",
                    m.reads
                        .percentile(99.0)
                        .max(m.writes.percentile(99.0))
                        .as_micros_f64()
                ),
                &format!("{:.1}", m.ops_per_sec() / 1e3),
                &format!("{:.2}", m.cpu_cores_used()),
            ]);
        }
    }
    println!("{table}");

    // Workload E (short scans) maps to the KV-SSD's iterator buckets:
    // the device groups keys by their first 4 bytes (Sec. II).
    let mut store = setup::kv_ssd();
    let l = run_phase(&mut store, &ycsb::load(population), SimTime::ZERO);
    let dev = store.device_mut();
    let (t, handle) = dev.iter_open(l.finished, *b"usr.");
    let mut t = t;
    let mut scanned = 0usize;
    let mut batches = 0u32;
    let scan_start = t;
    loop {
        let (t2, keys) = dev.iter_next(t, handle, 100).expect("open handle");
        t = t2;
        if keys.is_empty() {
            break;
        }
        scanned += keys.len();
        batches += 1;
    }
    dev.iter_close(t, handle).expect("close");
    println!(
        "Workload E analog: scanned {scanned} keys in {batches} iterator \
         batches over {} of virtual time ({:.1} us per 100-key batch).",
        t.since(scan_start),
        t.since(scan_start).as_micros_f64() / batches.max(1) as f64,
    );
    println!(
        "\nPer the paper's conclusion, the KV-SSD's fit is read-heavy and\n\
         concurrent workloads (B/C) — update-heavy mixes (A/F) eventually\n\
         meet its foreground GC."
    );
}
