//! Capacity planner: given your record shape, how much usable space —
//! and how many records — does a KV-SSD really give you?
//!
//! Implements the paper's Fig. 7 arithmetic as a planning tool: the
//! device pads records to its 1 KiB allocation unit and caps the total
//! KVP count, so "3.84 TB" can mean anything from ~20x less to the full
//! capacity depending on value size.
//!
//! ```sh
//! cargo run --release --example capacity_planner [key_bytes] [value_bytes]
//! ```

use kvssd_study::core::blob::BlobLayout;
use kvssd_study::core::{KvConfig, KvSsd};
use kvssd_study::flash::{FlashTiming, Geometry};
use kvssd_study::kvbench::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let key_bytes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let value_bytes: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let config = KvConfig::pm983_scaled();
    let dev = KvSsd::new(Geometry::pm983_scaled(), FlashTiming::pm983_like(), config);
    let space = dev.space();

    println!(
        "Device: {:.2} GiB data capacity, KVP limit {} (scaled PM983)\n",
        space.capacity_bytes as f64 / (1 << 30) as f64,
        space.max_kvps
    );

    // The requested record shape.
    let layout = BlobLayout::plan(&config, key_bytes, value_bytes);
    let by_space = space.capacity_bytes / layout.allocated_bytes();
    let fit = by_space.min(space.max_kvps);
    println!(
        "Your record: {key_bytes} B key + {value_bytes} B value -> {} B allocated ({:.1}x amplification, {} segment(s))",
        layout.allocated_bytes(),
        layout.amplification(),
        layout.segments()
    );
    println!(
        "Fits {} records ({} limited); effective user capacity {:.2} GiB of {:.2} GiB\n",
        fit,
        if by_space < space.max_kvps {
            "space"
        } else {
            "KVP-count"
        },
        (fit * layout.user_bytes) as f64 / (1 << 30) as f64,
        space.capacity_bytes as f64 / (1 << 30) as f64,
    );

    // A planning table across common record shapes.
    println!("Planning table (16 B keys):");
    let mut t = Table::new(&[
        "value",
        "allocated",
        "amplification",
        "records fit",
        "limited by",
        "effective capacity",
    ]);
    for v in [16u64, 50, 100, 256, 512, 1024, 4096, 16 * 1024, 64 * 1024] {
        let l = BlobLayout::plan(&config, 16, v);
        let by_space = space.capacity_bytes / l.allocated_bytes();
        let fit = by_space.min(space.max_kvps);
        t.row(&[
            &format!("{v}B"),
            &format!("{}B", l.allocated_bytes()),
            &format!("{:.1}x", l.amplification()),
            &fit.to_string(),
            if by_space < space.max_kvps {
                "space"
            } else {
                "KVP limit"
            },
            &format!("{:.3} GiB", (fit * l.user_bytes) as f64 / (1 << 30) as f64),
        ]);
    }
    println!("{t}");
    println!(
        "Rule of thumb from the paper: keep records >= 1 KiB (or batch smaller\n\
         ones) — below that, padding wastes up to 20x the space and the KVP\n\
         limit, not the flash, caps the device."
    );
}
