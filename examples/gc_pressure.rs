//! Foreground-GC pressure study (the paper's Fig. 6 mechanism, hands-on):
//! fill a KV-SSD to 80 %, then rewrite it with uniform-random updates and
//! watch bandwidth collapse as garbage collection goes foreground.
//!
//! ```sh
//! cargo run --release --example gc_pressure
//! ```

use kvssd_study::bench::setup;
use kvssd_study::kvbench::{run_phase, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::SimTime;

fn main() {
    let mut store = setup::kv_ssd_with(setup::kv_config_macro());
    let cap = store.device().space().capacity_bytes;
    let n = (cap * 8 / 10) / 4160; // ~80 % fill with 4 KiB values
    println!(
        "Device capacity {:.2} GiB; filling {} keys of 4 KiB (~80 %)...",
        cap as f64 / (1 << 30) as f64,
        n
    );
    let fill = run_phase(
        &mut store,
        &WorkloadSpec::new("fill", n, n)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(16),
        SimTime::ZERO,
    );
    println!(
        "fill: {:.0} MB/s, {} foreground-GC events\n",
        fill.mean_mbps(),
        store.device().stats().foreground_gc_events
    );

    let upd = run_phase(
        &mut store,
        &WorkloadSpec::new("updates", n, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(16)
            .seed(97),
        fill.finished,
    );
    let d = store.device().stats();
    println!("update phase (uniform random, rewriting the full population):");
    println!("  mean bandwidth : {:.1} MB/s", upd.mean_mbps());
    println!(
        "  mean / p99 lat : {:.0} us / {:.0} us",
        upd.writes.mean().as_micros_f64(),
        upd.writes.percentile(99.0).as_micros_f64()
    );
    println!("  foreground GC  : {} episodes", d.foreground_gc_events);
    println!("  GC copies      : {} blob segments", d.gc_copied_segments);
    println!("  GC erases      : {} blocks", d.gc_erases);
    println!("  write stalls   : {} total", d.stall_time);

    // Bandwidth timeline: the dips are foreground GC.
    println!("\n  bandwidth timeline (MB/s, ~equal windows):");
    let pts = upd.bandwidth.points();
    let chunk = pts.len().div_ceil(30).max(1);
    let line: Vec<String> = pts
        .chunks(chunk)
        .map(|c| {
            format!(
                "{:.0}",
                c.iter().map(|p| p.mbps).sum::<f64>() / c.len() as f64
            )
        })
        .collect();
    println!("  {}", line.join(" "));
    println!(
        "\nPaper Sec. V: \"it is better to avoid KV-SSD for write-heavy\n\
         workloads ... due to its susceptibility to foreground GC\"."
    );
}
