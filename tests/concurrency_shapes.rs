//! Queue-depth behavior: the paper's "KV-SSD ... provide[s] better
//! performance at high concurrency" (Sec. V), as testable shapes.

use kvssd_study::bench::setup;
use kvssd_study::kvbench::{run_phase, KvStore, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::{SimDuration, SimTime};

/// (mean latency us, ops/s) for a phase on a fresh KV device.
fn kv_read_point(qd: usize) -> (f64, f64) {
    let mut s = setup::kv_ssd();
    let n = 4_000;
    let f = run_phase(
        &mut s,
        &WorkloadSpec::new("fill", n, n)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(1024))
            .queue_depth(16),
        SimTime::ZERO,
    );
    let m = run_phase(
        &mut s,
        &WorkloadSpec::new("read", n, n)
            .mix(OpMix::ReadOnly)
            .queue_depth(qd)
            .seed(83),
        f.finished + SimDuration::from_secs(1),
    );
    (m.reads.mean().as_micros_f64(), m.ops_per_sec())
}

#[test]
fn read_latency_rises_and_throughput_saturates_with_depth() {
    let pts: Vec<(usize, (f64, f64))> = [1, 4, 16, 64]
        .iter()
        .map(|&qd| (qd, kv_read_point(qd)))
        .collect();
    // Latency is non-decreasing in depth (queueing).
    for w in pts.windows(2) {
        let (qd_a, (lat_a, thr_a)) = w[0];
        let (qd_b, (lat_b, thr_b)) = w[1];
        assert!(
            lat_b >= lat_a * 0.95,
            "latency fell from QD{qd_a} ({lat_a}) to QD{qd_b} ({lat_b})"
        );
        assert!(
            thr_b >= thr_a * 0.95,
            "throughput fell from QD{qd_a} ({thr_a}) to QD{qd_b} ({thr_b})"
        );
    }
    // Going 1 -> 64 must have bought real throughput (die parallelism).
    let thr_1 = pts[0].1 .1;
    let thr_64 = pts[3].1 .1;
    assert!(
        thr_64 > thr_1 * 4.0,
        "QD64 should scale reads well past QD1 ({thr_1} -> {thr_64})"
    );
}

#[test]
fn kv_write_advantage_appears_at_depth_for_small_values() {
    // The Fig. 4 claim as a QD sweep at 2 KiB: KV loses at QD 1 or wins
    // mildly, and wins clearly at QD 64.
    let ratio_at = |qd: usize| {
        let measure = |store: &mut dyn KvStore| {
            let n = 3_000;
            let f = run_phase(
                store,
                &WorkloadSpec::new("fill", n, n)
                    .mix(OpMix::InsertOnly)
                    .value(ValueSize::Fixed(2048))
                    .queue_depth(16),
                SimTime::ZERO,
            );
            run_phase(
                store,
                &WorkloadSpec::new("w", n, n)
                    .mix(OpMix::UpdateOnly)
                    .value(ValueSize::Fixed(2048))
                    .queue_depth(qd)
                    .seed(89),
                f.finished + SimDuration::from_millis(200),
            )
            .writes
            .mean()
            .as_micros_f64()
        };
        let kv = measure(&mut setup::kv_ssd());
        let blk = measure(&mut setup::block_direct(2048));
        kv / blk
    };
    let qd1 = ratio_at(1);
    let qd64 = ratio_at(64);
    assert!(
        qd64 < qd1,
        "depth should move the ratio in KV's favor ({qd1:.2} -> {qd64:.2})"
    );
    assert!(qd64 < 1.0, "KV must win at depth (ratio {qd64:.2})");
}

#[test]
fn sustained_write_throughput_is_depth_insensitive() {
    // Writes complete in the buffer; sustained throughput is drain-bound,
    // so depth should barely move it (unlike reads).
    let thr_at = |qd: usize| {
        let mut s = setup::kv_ssd();
        let n = 20_000;
        run_phase(
            &mut s,
            &WorkloadSpec::new("fill", n, n)
                .mix(OpMix::InsertOnly)
                .value(ValueSize::Fixed(4096))
                .queue_depth(qd),
            SimTime::ZERO,
        )
        .mean_mbps()
    };
    let a = thr_at(8);
    let b = thr_at(64);
    assert!(
        (a - b).abs() / a.max(b) < 0.35,
        "sustained write bandwidth should not swing with depth ({a:.0} vs {b:.0} MB/s)"
    );
}
