//! The parallel scheduler must not change results: rendered figure
//! tables with `KVSSD_BENCH_THREADS=1` (the exact serial pass-through)
//! and `=4` (the worker pool) are byte-identical at tiny scale.

use kvssd_study::bench::experiments::{
    ablations, cells, fig2, fig4, fig5, fig7, replication, scaleout,
};
use kvssd_study::bench::Scale;

fn rendered_suite(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&fig2::render(&fig2::run(scale)));
    out.push_str(&fig4::render(&fig4::run(scale)));
    out.push_str(&fig5::render(&fig5::run(scale)));
    out.push_str(&fig7::render(&fig7::run(scale)));
    out.push_str(&ablations::render(&ablations::run(scale)));
    out.push_str(&scaleout::render(&scaleout::run(scale)));
    out.push_str(&replication::render(&replication::run(scale)));
    out
}

/// One test (not several) so the process-global thread override cannot
/// race between concurrently running test functions.
#[test]
fn thread_count_does_not_change_rendered_tables() {
    // The env-var path is the user-facing contract; drive it directly.
    std::env::set_var("KVSSD_BENCH_THREADS", "1");
    assert_eq!(cells::thread_count(), 1);
    let serial = rendered_suite(Scale::Tiny);

    std::env::set_var("KVSSD_BENCH_THREADS", "4");
    assert_eq!(cells::thread_count(), 4);
    let parallel = rendered_suite(Scale::Tiny);

    std::env::remove_var("KVSSD_BENCH_THREADS");

    assert!(
        serial.contains("=== Fig. 2")
            && serial.contains("=== Fig. 5")
            && serial.contains("=== Ablations")
            && serial.contains("=== Scale-out")
            && serial.contains("=== Replication"),
        "suite must actually render the ported figures"
    );
    assert_eq!(
        serial, parallel,
        "KVSSD_BENCH_THREADS=1 and =4 must produce byte-identical tables"
    );
}
