//! Shape assertions over the paper's experiments at `Scale::Tiny`.
//!
//! These are the reproduction's regression tests: each checks the
//! *direction and rough magnitude* of a paper finding (who wins, where
//! crossovers and cliffs fall), not absolute microseconds.

use kvssd_study::bench::experiments::{fig3, fig4, fig5, fig6, fig7, fig8};
use kvssd_study::bench::Scale;

#[test]
fn fig3_index_occupancy_cliff() {
    let r = fig3::run(Scale::Tiny);
    // KV-SSD writes degrade far more than reads; the block-SSD is flat.
    let kv_w = r.write_degradation("KV-SSD");
    let kv_r = r.read_degradation("KV-SSD");
    assert!(
        kv_w > 3.0,
        "KV write degradation {kv_w} (paper: up to 16.4x)"
    );
    assert!(kv_r > 1.2, "KV read degradation {kv_r} (paper: up to 2x)");
    assert!(
        kv_w > kv_r * 1.5,
        "writes must degrade harder than reads ({kv_w} vs {kv_r})"
    );
    let blk_w = r.write_degradation("Block-SSD");
    let blk_r = r.read_degradation("Block-SSD");
    assert!(blk_w < 2.0, "block writes should stay ~flat ({blk_w})");
    assert!(blk_r < 1.5, "block reads should stay ~flat ({blk_r})");
}

#[test]
fn fig4_crossover_at_page_budget() {
    let r = fig4::run(Scale::Tiny);
    // At QD 64: KV wins below the 24 KiB page payload budget...
    assert!(
        r.row(2048, 64).write_ratio() < 1.0,
        "2 KiB @ QD64: KV should win writes ({})",
        r.row(2048, 64).write_ratio()
    );
    assert!(
        r.row(24576, 64).write_ratio() < 1.1,
        "24 KiB @ QD64: KV should still be competitive ({})",
        r.row(24576, 64).write_ratio()
    );
    // ...and loses once values split across pages.
    assert!(
        r.row(32768, 64).write_ratio() > 1.2,
        "32 KiB @ QD64: splitting should cost KV ({})",
        r.row(32768, 64).write_ratio()
    );
    // At QD 1 large values, the key handling keeps KV behind.
    assert!(
        r.row(32768, 1).write_ratio() > 1.0,
        "32 KiB @ QD1 ({})",
        r.row(32768, 1).write_ratio()
    );
}

#[test]
fn fig5_bandwidth_dips_past_page_budget() {
    let r = fig5::run(Scale::Tiny);
    let at = |v: u32| r.kv_mbps(v * 1024);
    // Sharp dip just past 24 KiB, recovery by 48 KiB, second dip at 49.
    assert!(
        at(25) < at(24) * 0.75,
        "25 KiB should dip vs 24 KiB ({} vs {})",
        at(25),
        at(24)
    );
    assert!(
        at(48) > at(25) * 1.3,
        "48 KiB should recover vs 25 KiB ({} vs {})",
        at(48),
        at(25)
    );
    assert!(
        at(49) < at(48) * 0.85,
        "49 KiB should dip again ({} vs {})",
        at(49),
        at(48)
    );
    // The block side is smooth: its worst point stays close to its best.
    let blk: Vec<f64> = r.rows.iter().map(|x| x.blk_mbps).collect();
    let (min, max) = blk
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(a, b), &v| (a.min(v), b.max(v)));
    assert!(
        min > max * 0.6,
        "block bandwidth should be smooth ({min}..{max})"
    );
}

#[test]
fn fig6_foreground_gc_hits_kv_not_block() {
    let r = fig6::run(Scale::Tiny);
    let rdb = r.panel("a-rocksdb-block");
    let kv = r.panel("b-kvssd-uniform");
    let win = r.panel("c-kvssd-window");
    // The block device under RocksDB does no copy work (TRIM'd SSTs).
    assert_eq!(rdb.copies, 0, "RocksDB/block should see no GC copies");
    // The KV device goes foreground and copies heavily, in both the
    // uniform and the sliding-window (footnote 2) patterns.
    assert!(
        kv.foreground_gc_events > 0,
        "uniform updates must trigger fg GC"
    );
    assert!(kv.copies > 0);
    assert!(
        win.foreground_gc_events > 0,
        "window updates must trigger fg GC"
    );
    assert!(win.copies > 0);
}

#[test]
fn fig7_space_amplification_ordering() {
    let r = fig7::run(Scale::Tiny);
    // KV-SSD at 50 B: an order of magnitude (paper: 17x).
    let kv50 = r.amp("KV-SSD", 50);
    assert!(kv50 > 10.0 && kv50 < 25.0, "KV @50B amp {kv50}");
    // Aerospike stays low single digits; RocksDB near 1.
    let as50 = r.amp("Aerospike", 50);
    assert!(as50 < 3.0, "Aerospike @50B amp {as50} (paper: 1.8x)");
    assert!(as50 > 1.0);
    let rdb50 = r.amp("RocksDB", 50);
    assert!(rdb50 < 1.8, "RocksDB @50B amp {rdb50} (paper: ~1.11x)");
    // KV-SSD packs tightly at 1-4 KiB.
    assert!(r.amp("KV-SSD", 1024) < 1.2);
    assert!(r.amp("KV-SSD", 4096) < 1.1);
    // Ordering at small values: KV >> Aerospike > RocksDB.
    assert!(kv50 > as50 && as50 > rdb50);
}

#[test]
fn fig8_second_command_halves_async_throughput() {
    let r = fig8::run(Scale::Tiny);
    assert_eq!(r.row(16).commands, 1);
    assert_eq!(r.row(20).commands, 2);
    let drop = r.row(20).async_kops / r.row(16).async_kops;
    assert!(
        (0.35..0.75).contains(&drop),
        "16->20 B async drop {drop} (paper: ~0.53x)"
    );
    // Sync I/O also pays, but less dramatically.
    let sync_drop = r.row(20).sync_kops / r.row(16).sync_kops;
    assert!(sync_drop < 0.95 && sync_drop > drop - 0.25);
    // Throughput decreases monotonically-ish with key length overall.
    assert!(r.row(255).async_kops <= r.row(20).async_kops * 1.05);
}
