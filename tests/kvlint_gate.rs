//! Tier-1 gate: `cargo test -q` from the workspace root runs the full
//! kvlint pass over the repository. Any unsuppressed violation of the
//! determinism / virtual-time / offline-green invariants fails this
//! test with a file:line diagnostic naming the rule.

use std::path::Path;

#[test]
fn panic_surface_baseline_is_tight() {
    // The ratchet: the committed kvlint-baseline.toml must equal the
    // re-derived per-file panic-surface counts exactly. Over budget is
    // a regression (caught by the clean gate below too); *under* budget
    // is slack a future regression could hide in — shrink the baseline
    // in the same change that removes the sites
    // (`cargo run -p kvssd-lint -- --write-baseline`). Equality also
    // means the baseline can never grow without the diff showing it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = kvssd_lint::lint_workspace(root).expect("workspace walk succeeds");
    let baseline = kvssd_lint::load_baseline(root)
        .expect("baseline parses")
        .expect("kvlint-baseline.toml is committed at the workspace root");
    assert_eq!(
        baseline.counts, report.panic_surface,
        "kvlint-baseline.toml is stale; regenerate with \
         `cargo run -p kvssd-lint -- --write-baseline` (budgets may only shrink)"
    );
}

#[test]
fn kvlint_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = kvssd_lint::lint_workspace(root).expect("workspace walk succeeds");
    if !report.is_clean() {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        panic!(
            "kvlint: {} unsuppressed violation(s) in {} file(s) scanned — see diagnostics above; \
             suppress only with a justified `// kvlint: allow(<rule>) — <why>` pragma",
            report.total_violations(),
            report.files_scanned
        );
    }
}
