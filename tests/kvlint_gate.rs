//! Tier-1 gate: `cargo test -q` from the workspace root runs the full
//! kvlint pass over the repository. Any unsuppressed violation of the
//! determinism / virtual-time / offline-green invariants fails this
//! test with a file:line diagnostic naming the rule.

use std::path::Path;

#[test]
fn kvlint_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = kvssd_lint::lint_workspace(root).expect("workspace walk succeeds");
    if !report.is_clean() {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        panic!(
            "kvlint: {} unsuppressed violation(s) in {} file(s) scanned — see diagnostics above; \
             suppress only with a justified `// kvlint: allow(<rule>) — <why>` pragma",
            report.total_violations(),
            report.files_scanned
        );
    }
}
