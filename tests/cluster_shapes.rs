//! Cluster-scale shapes: the degenerate 1-shard case collapses to the
//! single-device reproduction exactly, and spreading a uniform workload
//! over more shards increases aggregate bandwidth.

use kvssd_study::bench::experiments::{fabric, fabric_faults, replication, scaleout};
use kvssd_study::bench::{setup, Scale};
use kvssd_study::cluster::KvCluster;
use kvssd_study::core::KvConfig;
use kvssd_study::kvbench::{run_phase, AccessPattern, KvStore, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::SimTime;

/// A two-phase workload signature capturing virtual-time results to the
/// nanosecond: any divergence between two stores shows up here.
fn signature(store: &mut dyn KvStore) -> (u64, u64, u64, u64) {
    let fill = WorkloadSpec::new("fill", 1_200, 1_200)
        .mix(OpMix::InsertOnly)
        .pattern(AccessPattern::Uniform)
        .value(ValueSize::Uniform { lo: 32, hi: 6_000 })
        .queue_depth(8)
        .seed(20_26);
    let f = run_phase(store, &fill, SimTime::ZERO);
    let mixed = WorkloadSpec::new("mix", 1_600, 1_200)
        .mix(OpMix::Mixed { read_pct: 60 })
        .pattern(AccessPattern::Zipfian { theta: 0.8 })
        .value(ValueSize::facebook_like())
        .queue_depth(16)
        .seed(7_7);
    let m = run_phase(store, &mixed, f.finished);
    (
        f.finished.as_nanos(),
        m.finished.as_nanos(),
        m.writes.mean().as_nanos(),
        m.reads.percentile(99.0).as_nanos(),
    )
}

/// The acceptance anchor: a 1-shard cluster (pass-through submission
/// queue) must reproduce the bare single-device store's virtual-time
/// results exactly — same seed, same nanoseconds.
#[test]
fn one_shard_cluster_equals_bare_device_exactly() {
    // Same device config on both sides (the bare store's default).
    let bare = signature(&mut setup::kv_ssd());
    let clustered = signature(&mut setup::kv_cluster_with(1, 99, KvConfig::pm983_scaled()));
    assert_eq!(
        bare, clustered,
        "a 1-shard cluster must be bit-identical to the single device"
    );
}

/// The ring seed must not matter at N = 1 (everything routes to the one
/// shard regardless of placement).
#[test]
fn one_shard_routing_is_seed_independent() {
    let a = signature(&mut setup::kv_cluster_with(1, 1, KvConfig::pm983_scaled()));
    let b = signature(&mut setup::kv_cluster_with(
        1,
        2_000,
        KvConfig::pm983_scaled(),
    ));
    assert_eq!(a, b);
}

/// Uniform-workload aggregate bandwidth grows monotonically with shard
/// count at N ∈ {1, 2, 4}: independent devices under one clock.
#[test]
fn aggregate_bandwidth_monotone_in_shards() {
    // Size the population for the 1-shard case (the tightest): half of
    // one small device's capacity, so no shard comes near full even
    // with consistent hashing's uneven spread.
    let cap = setup::kv_cluster_small(1, 42)
        .cluster()
        .space()
        .capacity_bytes;
    let n = (cap / 2) / 4160;
    let mbps = |shards: usize| {
        let mut store = setup::kv_cluster_small(shards, 42);
        let spec = WorkloadSpec::new("uniform-fill", n, n)
            .mix(OpMix::InsertOnly)
            .pattern(AccessPattern::Uniform)
            .value(ValueSize::Fixed(4096))
            .queue_depth(32)
            .seed(11);
        run_phase(&mut store, &spec, SimTime::ZERO).mean_mbps()
    };
    let one = mbps(1);
    let two = mbps(2);
    let four = mbps(4);
    assert!(two > one, "2 shards not faster than 1: {two} vs {one}");
    assert!(four > two, "4 shards not faster than 2: {four} vs {two}");
}

/// The scaleout experiment's Tiny sweep keeps the paper-facing shapes:
/// bandwidth up with N, per-shard GC collapse windows visible, and tail
/// latency still exposing the per-shard pauses.
#[test]
fn scaleout_experiment_shapes() {
    let res = scaleout::run(Scale::Tiny);
    assert_eq!(res.points.len(), scaleout::SHARD_COUNTS.len());
    let p1 = res.point(1);
    let p4 = res.point(4);
    assert!(
        p4.agg_mbps > p1.agg_mbps,
        "aggregate bandwidth must scale: N=4 {} vs N=1 {}",
        p4.agg_mbps,
        p1.agg_mbps
    );
    for p in &res.points {
        // 80 % occupancy + uniform updates force foreground GC (Fig. 6);
        // its collapse windows must stay visible per shard...
        assert!(p.fg_gc_events > 0, "N={} saw no foreground GC", p.shards);
        assert!(
            p.shard_dip_windows > 0,
            "N={} lost its per-shard collapse windows",
            p.shards
        );
        // ...and in the host-observed tail.
        assert!(
            p.p999_us > p.p50_us,
            "N={} tail does not expose GC pauses",
            p.shards
        );
    }
    // Collapses decorrelate: per-shard dip windows dominate synchronized
    // whole-cluster dips once there is more than one shard.
    for p in res.points.iter().filter(|p| p.shards >= 4) {
        assert!(
            p.synchronized_dip_windows <= p.shard_dip_windows,
            "N={}: sync windows exceed total dip windows",
            p.shards
        );
    }
}

/// The replication experiment's Tiny sweep keeps the durability-cost
/// shapes: the majority-quorum ack costs more at R = 3 than R = 1, the
/// repair after losing a shard re-replicates at N ≥ 4, and at N = 2
/// with R ≥ 2 the survivor already holds everything so the repair bill
/// is zero.
#[test]
fn replication_experiment_shapes() {
    let res = replication::run(Scale::Tiny);
    assert_eq!(res.points.len(), replication::SWEEP.len());
    for p in &res.points {
        assert!(p.resident_kvps > 0, "N={} R={} empty", p.shards, p.replicas);
        assert!(p.write_mbps > 0.0);
        assert!(p.write_p99_us >= p.write_p50_us);
        assert!(p.read_p99_us >= p.read_p50_us);
        assert!(p.repair_ms >= 0.0);
    }
    for &n in &[4usize, 8] {
        let r1 = res.point(n, 1);
        let r3 = res.point(n, 3);
        assert!(
            r3.write_p50_us > r1.write_p50_us,
            "N={n}: R=3 write ack {} not above R=1 {}",
            r3.write_p50_us,
            r1.write_p50_us
        );
        assert!(
            r3.read_p50_us > r1.read_p50_us,
            "N={n}: R=3 read ack {} not above R=1 {}",
            r3.read_p50_us,
            r1.read_p50_us
        );
        for r in 1..=3 {
            let p = res.point(n, r);
            assert!(
                p.moved_keys > 0 && p.copied_replicas >= p.moved_keys,
                "N={n} R={r}: repair moved {} copied {}",
                p.moved_keys,
                p.copied_replicas
            );
        }
    }
    for r in 2..=3 {
        let p = res.point(2, r);
        assert_eq!(
            p.copied_replicas, 0,
            "N=2 R={r}: the lone survivor already holds every key"
        );
    }
}

/// The fabric experiment's Tiny sweep keeps the transport shapes: read
/// latency climbs with link latency, unhedged cells never launch a
/// spare leg, the slow-replica cell eats the gray link in its p99.9,
/// and hedging pulls that tail back down for a sub-one-leg extra-read
/// bill — the acceptance shape for the transport figure.
#[test]
fn fabric_experiment_shapes() {
    let res = fabric::run(Scale::Tiny);
    assert_eq!(res.points.len(), fabric::SWEEP.len());
    // Link sweep: the whole read distribution tracks the one-way latency.
    let (l5, l20, l80) = (res.point("lat5"), res.point("lat20"), res.point("lat80"));
    assert!(
        l5.read_p50_us < l20.read_p50_us && l20.read_p50_us < l80.read_p50_us,
        "read p50 must climb with link latency: {} / {} / {}",
        l5.read_p50_us,
        l20.read_p50_us,
        l80.read_p50_us
    );
    // Nobody hedges without a hedge delay.
    for p in res.points.iter().filter(|p| p.hedge_us == 0) {
        assert_eq!(p.hedged_spares, 0, "{}: spare legs without a hedge", p.name);
        assert_eq!(p.extra_read_pct, 0.0);
    }
    // Slow replica: lean quorums that include the gray link stall on it...
    let slow = res.point("slow");
    let hedged = res.point("slow-hedge");
    assert!(
        slow.read_p999_us >= slow.slow_link_us as f64,
        "slow p99.9 {} should eat the {} µs gray link",
        slow.read_p999_us,
        slow.slow_link_us
    );
    // ...and the hedged spare leg caps the tail below the unhedged one.
    assert!(
        hedged.read_p999_us < slow.read_p999_us,
        "hedging must cut p99.9: {} vs {}",
        hedged.read_p999_us,
        slow.read_p999_us
    );
    assert!(
        hedged.hedged_spares > 0,
        "the slow link never tripped a hedge"
    );
    assert!(
        hedged.extra_read_pct > 0.0 && hedged.extra_read_pct < 100.0,
        "extra-read bill {}% should be a fraction of a leg per read",
        hedged.extra_read_pct
    );
}

/// Fault-sweep shapes: without deadlines a lossy wire strands quorums
/// (typed `QuorumUnavailable`, never a hang), arming retries rescues
/// them — availability climbs with the retry budget — and every rescue
/// is paid for in re-sent leg bytes, not free. The acceptance shape
/// for the fabric_faults figure.
#[test]
fn fabric_faults_experiment_shapes() {
    let res = fabric_faults::run(Scale::Tiny);
    assert_eq!(res.points.len(), fabric_faults::SWEEP.len());
    for p in &res.points {
        assert_eq!(
            p.ops,
            p.ok_ops + p.unavailable,
            "{}: ops must split",
            p.name
        );
        assert!(p.dropped > 0, "{}: the lossy link never dropped", p.name);
    }
    // Raw transports lose quorums and rescue nothing.
    let raw = res.point("drop20-raw");
    assert!(raw.unavailable > 0, "20% loss must strand some quorums");
    assert_eq!(raw.rescued, 0);
    assert_eq!(raw.leg_retries, 0);
    // Availability climbs with the retry budget and every armed cell
    // rescues ops the raw wire would have failed.
    let r1 = res.point("drop20-t500r1");
    let r3 = res.point("drop20-t500r3");
    assert!(
        raw.availability_pct < r1.availability_pct && r1.availability_pct <= r3.availability_pct,
        "availability must climb with retries: {} / {} / {}",
        raw.availability_pct,
        r1.availability_pct,
        r3.availability_pct
    );
    for name in ["drop2-t500r2", "drop20-t500r1", "drop20-t500r3"] {
        let p = res.point(name);
        assert!(p.rescued > 0, "{name}: retries rescued nothing");
        assert!(p.leg_retries >= p.rescued);
        assert!(
            res.extra_bytes_vs_raw(name) > 0,
            "{name}: rescues must cost wire bytes"
        );
    }
    // Hedged writes launch spares; their duplicates dedupe at replicas.
    let hw = res.point("drop20-t500r3-hw");
    assert!(hw.write_spares > 0, "the write hedge never fired");
    assert!(
        hw.dup_suppressed > 0,
        "spare legs must dedupe, not double-run"
    );
}

/// Rebalance accounting: keys move only when membership changes, the
/// moved share tracks the ring delta, and nothing is lost.
#[test]
fn rebalance_conserves_data() {
    let mut cluster = KvCluster::for_test(2);
    let mut t = SimTime::ZERO;
    let n = 400u64;
    for i in 0..n {
        t = cluster
            .store(
                t,
                format!("rk{i:08}").as_bytes(),
                kvssd_study::core::Payload::synthetic(512, i),
            )
            .unwrap();
    }
    let (id, rep) = cluster
        .add_shard(
            t,
            kvssd_study::core::KvSsd::new(
                kvssd_study::flash::Geometry::small(),
                kvssd_study::flash::FlashTiming::pm983_like(),
                kvssd_study::core::KvConfig::small(),
            ),
        )
        .unwrap();
    assert!(rep.moved_keys > 0);
    assert_eq!(cluster.len(), n);
    assert!(rep.completed >= rep.started, "rebalance must take time");
    let rep2 = cluster.remove_shard(rep.completed, id).unwrap();
    assert_eq!(cluster.len(), n);
    assert!(rep2.moved_keys > 0);
    for i in 0..n {
        let l = cluster
            .retrieve(rep2.completed, format!("rk{i:08}").as_bytes())
            .unwrap();
        assert!(l.value.is_some(), "lost rk{i:08} across rebalances");
    }
}
