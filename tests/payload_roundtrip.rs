//! Round-trip guarantees for the `Arc<[u8]>` payload representation:
//! retrieve must return exactly what was stored (including zero-length
//! and blob-split cases) while sharing storage with the index instead
//! of copying value bytes per lookup.

use kvssd_study::core::{KvConfig, KvSsd, Payload};
use kvssd_study::flash::{FlashTiming, Geometry};
use kvssd_study::sim::SimTime;

fn dev() -> KvSsd {
    KvSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        KvConfig::small(),
    )
}

#[test]
fn byte_payloads_round_trip_exactly() {
    let mut d = dev();
    let cases: Vec<(&[u8], Vec<u8>)> = vec![
        (b"tiny-val", vec![0xAB]),
        (b"ascii-val", b"the quick brown fox".to_vec()),
        (b"page-ish", (0..4096u32).map(|i| (i % 251) as u8).collect()),
    ];
    let mut t = SimTime::ZERO;
    for (key, val) in &cases {
        t = d.store(t, key, Payload::from_bytes(val.clone())).unwrap();
    }
    for (key, val) in &cases {
        let got = d.retrieve(t, key).unwrap();
        assert_eq!(
            got.value.unwrap().as_bytes().unwrap(),
            &val[..],
            "key {:?} must read back verbatim",
            String::from_utf8_lossy(key)
        );
    }
}

#[test]
fn zero_length_payload_round_trips() {
    let mut d = dev();
    let t = d
        .store(SimTime::ZERO, b"empty-one", Payload::from_bytes(vec![]))
        .unwrap();
    let got = d.retrieve(t, b"empty-one").unwrap();
    let p = got.value.expect("present");
    assert!(p.is_empty());
    assert_eq!(p.as_bytes(), Some(&[][..]));
    assert_eq!(p, Payload::from_bytes(vec![]));
}

#[test]
fn split_blob_payload_round_trips() {
    let mut d = dev();
    // 100 KiB of real bytes: far past the per-page value budget, so the
    // blob splits into multiple segments (the Fig. 4/5 mechanism).
    let big: Vec<u8> = (0..100 * 1024u32).map(|i| (i * 31 % 253) as u8).collect();
    let stored = Payload::from_bytes(big.clone());
    let t = d.store(SimTime::ZERO, b"big-blob", stored.clone()).unwrap();
    assert_eq!(d.stats().split_stores, 1, "100 KiB must split");
    assert!(
        d.segments_of(b"big-blob").unwrap().len() > 1,
        "split blob must occupy multiple segments"
    );
    let got = d.retrieve(t, b"big-blob").unwrap();
    let p = got.value.expect("present");
    assert_eq!(p, stored);
    assert_eq!(p.as_bytes().unwrap(), &big[..]);
}

#[test]
fn retrieve_shares_storage_instead_of_copying() {
    let mut d = dev();
    let stored = Payload::from_bytes(vec![9u8; 512]);
    let ptr = stored.as_bytes().unwrap().as_ptr();
    let t = d.store(SimTime::ZERO, b"shared-key", stored).unwrap();
    let got = d.retrieve(t, b"shared-key").unwrap();
    let p = got.value.expect("present");
    assert_eq!(
        p.as_bytes().unwrap().as_ptr(),
        ptr,
        "retrieve must return a refcount bump of the stored bytes, not a copy"
    );
}

#[test]
fn overwrites_do_not_leak_old_bytes() {
    let mut d = dev();
    let t = d
        .store(
            SimTime::ZERO,
            b"version-key",
            Payload::from_bytes(vec![1; 64]),
        )
        .unwrap();
    let t = d
        .store(t, b"version-key", Payload::from_bytes(vec![2; 128]))
        .unwrap();
    let got = d.retrieve(t, b"version-key").unwrap();
    assert_eq!(got.value.unwrap().as_bytes().unwrap(), &[2u8; 128][..]);
}
