// Proptest-based suite: compiled only with `--features proptest` (needs
// network to fetch proptest; the default offline pass runs the in-repo
// generator suites instead).
#![cfg(feature = "proptest")]

//! Property-based model checking: devices and stores against reference
//! models under arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use kvssd_study::core::{KvConfig, KvSsd, Payload};
use kvssd_study::flash::{FlashTiming, Geometry};
use kvssd_study::host_stack::ExtFs;
use kvssd_study::lsm_store::{LsmConfig, LsmStore};
use kvssd_study::sim::SimTime;

/// One step of a key-value workload.
#[derive(Debug, Clone)]
enum Op {
    Store(u8, u16),
    Delete(u8),
    Get(u8),
    Exist(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u16..6000).prop_map(|(k, v)| Op::Store(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Exist),
    ]
}

fn key_of(k: u8) -> Vec<u8> {
    format!("prop.key.{k:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The KV device agrees with a HashMap model on any op sequence —
    /// through packing, padding, buffering, and GC.
    #[test]
    fn kvssd_matches_hashmap_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut dev = KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        );
        let mut model: HashMap<Vec<u8>, (u16, u64)> = HashMap::new();
        let mut t = SimTime::ZERO;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Store(k, v) => {
                    t = dev
                        .store(t, &key_of(k), Payload::synthetic(v as u32, i as u64))
                        .unwrap();
                    model.insert(key_of(k), (v, i as u64));
                }
                Op::Delete(k) => {
                    let (t2, existed) = dev.delete(t, &key_of(k)).unwrap();
                    t = t2;
                    prop_assert_eq!(existed, model.remove(&key_of(k)).is_some());
                }
                Op::Get(k) => {
                    let l = dev.retrieve(t, &key_of(k)).unwrap();
                    prop_assert!(l.at >= t);
                    t = l.at;
                    match model.get(&key_of(k)) {
                        Some(&(v, tag)) => {
                            prop_assert_eq!(l.value, Some(Payload::synthetic(v as u32, tag)));
                        }
                        None => prop_assert!(l.value.is_none()),
                    }
                }
                Op::Exist(k) => {
                    let (t2, found) = dev.exist(t, &key_of(k)).unwrap();
                    t = t2;
                    prop_assert_eq!(found, model.contains_key(&key_of(k)));
                }
            }
        }
        // Global accounting invariants hold at every end state.
        let space = dev.space();
        prop_assert_eq!(space.kvp_count, model.len() as u64);
        let user: u64 = model
            .iter()
            .map(|(k, &(v, _))| k.len() as u64 + v as u64)
            .sum();
        prop_assert_eq!(space.user_bytes, user);
        prop_assert!(space.allocated_bytes >= space.user_bytes || model.is_empty());
        prop_assert!(space.allocated_bytes <= space.capacity_bytes);
    }

    /// The LSM store agrees with a HashMap model across flushes and
    /// compactions.
    #[test]
    fn lsm_matches_hashmap_model(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let dev = kvssd_study::block_ftl::BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            kvssd_study::block_ftl::BlockFtlConfig::pm983_like(),
        );
        let mut store = LsmStore::new(ExtFs::format(dev), LsmConfig::tiny());
        let mut model: HashMap<Vec<u8>, (u16, u64)> = HashMap::new();
        let mut t = SimTime::ZERO;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Store(k, v) => {
                    t = store.put(t, &key_of(k), Payload::synthetic(v as u32, i as u64));
                    model.insert(key_of(k), (v, i as u64));
                }
                Op::Delete(k) => {
                    t = store.delete(t, &key_of(k));
                    model.remove(&key_of(k));
                }
                Op::Get(k) | Op::Exist(k) => {
                    let (t2, got) = store.get(t, &key_of(k));
                    t = t2;
                    match model.get(&key_of(k)) {
                        Some(&(v, tag)) => {
                            prop_assert_eq!(got, Some(Payload::synthetic(v as u32, tag)));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
            }
        }
        prop_assert_eq!(store.len(), model.len() as u64);
    }

    /// Virtual time is monotone and every store is readable immediately
    /// after its completion, for any interleaving.
    #[test]
    fn kvssd_time_is_monotone(seed in 0u64..1_000, n in 1usize..80) {
        let mut dev = KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        );
        let mut rng = kvssd_study::sim::DeterministicRng::seed_from(seed);
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let k = key_of(rng.below(64) as u8);
            let before = t;
            t = dev.store(t, &k, Payload::synthetic(rng.below(4096) as u32, i as u64)).unwrap();
            prop_assert!(t >= before, "store completion moved backwards");
            let l = dev.retrieve(t, &k).unwrap();
            prop_assert!(l.value.is_some(), "read-your-write failed");
            prop_assert!(l.at >= t);
            t = l.at;
        }
    }

    /// Blob layout planning conserves bytes and respects page budgets for
    /// arbitrary shapes.
    #[test]
    fn blob_layout_invariants(key_len in 4usize..=255, value_len in 0u64..2_097_152) {
        let cfg = KvConfig::pm983_scaled();
        let l = kvssd_study::core::blob::BlobLayout::plan(&cfg, key_len, value_len);
        prop_assert_eq!(l.user_bytes, key_len as u64 + value_len);
        prop_assert!(l.allocated_bytes() >= l.user_bytes);
        for (&a, &r) in l.segment_alloc.iter().zip(&l.segment_raw) {
            prop_assert!(a >= r);
            prop_assert!(r <= cfg.page_payload_bytes);
            prop_assert!(a >= cfg.alloc_unit || l.segments() == 1);
        }
        // Raw bytes across segments carry the value exactly once.
        let raw: u64 = l.segment_raw.iter().map(|&r| r as u64).sum();
        let overhead = cfg.meta_bytes as u64
            + key_len as u64
            + (l.segments() as u64 - 1) * cfg.seg_header_bytes as u64;
        prop_assert_eq!(raw, value_len + overhead);
    }
}
