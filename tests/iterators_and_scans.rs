//! Iterator/scan surfaces across the stacks (the workload-E shape).

use kvssd_study::bench::setup;
use kvssd_study::core::Payload;
use kvssd_study::host_stack::ExtFs;
use kvssd_study::lsm_store::{LsmConfig, LsmStore};
use kvssd_study::sim::SimTime;

#[test]
fn device_iterators_cover_prefix_buckets_exactly() {
    let mut s = setup::kv_ssd();
    let dev = s.device_mut();
    let mut t = SimTime::ZERO;
    // Two buckets: "usr." and "dev." keys.
    for i in 0..40u32 {
        t = dev
            .store(
                t,
                format!("usr.{i:08}").as_bytes(),
                Payload::synthetic(64, i as u64),
            )
            .unwrap();
    }
    for i in 0..25u32 {
        t = dev
            .store(
                t,
                format!("dev.{i:08}").as_bytes(),
                Payload::synthetic(64, i as u64),
            )
            .unwrap();
    }
    // Iterate each bucket with small batches; counts must be exact and
    // batches disjoint.
    for (prefix, expect) in [(*b"usr.", 40usize), (*b"dev.", 25)] {
        let (mut t2, h) = dev.iter_open(t, prefix);
        let mut seen = kvssd_sim::PrehashedSet::default();
        loop {
            let (t3, keys) = dev.iter_next(t2, h, 7).unwrap();
            t2 = t3;
            if keys.is_empty() {
                break;
            }
            for k in keys {
                assert_eq!(&k[..4], &prefix);
                assert!(seen.insert(k), "duplicate key in iteration");
            }
        }
        dev.iter_close(t2, h).unwrap();
        assert_eq!(seen.len(), expect, "bucket {:?}", prefix);
    }
}

#[test]
fn iteration_reflects_deletes_and_iterators_take_time() {
    let mut s = setup::kv_ssd();
    let dev = s.device_mut();
    let mut t = SimTime::ZERO;
    for i in 0..20u32 {
        t = dev
            .store(
                t,
                format!("scan{i:08}").as_bytes(),
                Payload::synthetic(32, 0),
            )
            .unwrap();
    }
    let (t2, removed) = dev.delete(t, b"scan00000007").unwrap();
    assert!(removed);
    let (t3, h) = dev.iter_open(t2, *b"scan");
    let (t4, keys) = dev.iter_next(t3, h, 100).unwrap();
    assert_eq!(keys.len(), 19);
    assert!(t4 > t3, "iteration consumes virtual time");
    dev.iter_close(t4, h).unwrap();
}

#[test]
fn lsm_scan_matches_device_iteration_contents() {
    // The same population through both stacks: the LSM's ordered scan
    // and the device's bucket iteration must agree on the key set.
    let mut kv = setup::kv_ssd();
    let mut lsm = LsmStore::new(ExtFs::format(setup::block_ssd()), LsmConfig::tiny());
    let mut t = SimTime::ZERO;
    let mut t2 = SimTime::ZERO;
    for i in 0..150u32 {
        let key = format!("rng.{i:09}");
        t = kv
            .device_mut()
            .store(t, key.as_bytes(), Payload::synthetic(64, i as u64))
            .unwrap();
        t2 = lsm.put(t2, key.as_bytes(), Payload::synthetic(64, i as u64));
    }
    t2 = lsm.flush_all(t2);
    let (_, scanned) = lsm.scan(t2, b"rng.", 1000);
    let (t5, h) = kv.device_mut().iter_open(t, *b"rng.");
    let (_, iterated) = kv.device_mut().iter_next(t5, h, 1000).unwrap();
    let mut a: Vec<Vec<u8>> = scanned.into_iter().map(|(k, _)| k.to_vec()).collect();
    let mut b: Vec<Vec<u8>> = iterated.into_iter().map(|k| k.to_vec()).collect();
    a.sort();
    b.sort();
    assert_eq!(a.len(), 150);
    assert_eq!(a, b);
}

#[test]
fn lsm_scan_latency_scales_with_tables_probed() {
    let mut lsm = LsmStore::new(ExtFs::format(setup::block_ssd()), LsmConfig::tiny());
    let mut t = SimTime::ZERO;
    for i in 0..2_000u32 {
        t = lsm.put(
            t,
            format!("sk.{i:09}").as_bytes(),
            Payload::synthetic(200, 0),
        );
    }
    t = lsm.flush_all(t);
    let before = t;
    let (after, got) = lsm.scan(t, b"sk.", 50);
    assert_eq!(got.len(), 50);
    assert!(after > before, "scans consume time");
}
