//! Cross-crate integration: the two firmware personalities over the same
//! NAND substrate, and the four store stacks behind one interface.

use kvssd_study::bench::setup;
use kvssd_study::kvbench::{run_phase, AccessPattern, KvStore, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::{SimDuration, SimTime};

fn all_stores() -> Vec<Box<dyn KvStore>> {
    vec![
        Box::new(setup::kv_ssd()),
        Box::new(setup::rocksdb()),
        Box::new(setup::aerospike()),
        Box::new(setup::block_direct(1024)),
    ]
}

#[test]
fn every_stack_serves_a_full_crud_cycle() {
    for mut s in all_stores() {
        let name = s.name();
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            t = s.insert(t, format!("crud.{i:06}").as_bytes(), 700, i);
        }
        for i in (0..200).step_by(11) {
            let (t2, found) = s.read(t, format!("crud.{i:06}").as_bytes());
            t = t2;
            assert!(found, "{name}: lost key {i}");
        }
        let (_, ghost) = s.read(t, b"crud.999999");
        assert!(!ghost, "{name}: invented a key");
        t = s.delete(t, b"crud.000011");
        let (_, gone) = s.read(t, b"crud.000011");
        assert!(!gone, "{name}: kept a deleted key");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = || {
        let mut s = setup::kv_ssd();
        let spec = WorkloadSpec::new("det", 500, 500)
            .mix(OpMix::InsertOnly)
            .pattern(AccessPattern::Uniform)
            .value(ValueSize::Uniform { lo: 64, hi: 2048 })
            .queue_depth(8)
            .seed(1234);
        let m = run_phase(&mut s, &spec, SimTime::ZERO);
        (m.finished, m.writes.mean(), m.writes.percentile(99.0))
    };
    assert_eq!(run(), run(), "same seed must give identical virtual time");
}

#[test]
fn kv_firmware_ignores_key_order_block_firmware_does_not() {
    // The paper's central Fig. 2 observation, at integration level.
    let mean_insert = |store: &mut dyn KvStore, pattern| {
        let spec = WorkloadSpec::new("p", 800, 800)
            .mix(OpMix::InsertOnly)
            .pattern(pattern)
            .value(ValueSize::Fixed(4096))
            .queue_depth(8);
        run_phase(store, &spec, SimTime::ZERO)
            .writes
            .mean()
            .as_micros_f64()
    };
    let kv_seq = mean_insert(&mut setup::kv_ssd(), AccessPattern::Sequential);
    let kv_rand = mean_insert(&mut setup::kv_ssd(), AccessPattern::Uniform);
    let ratio = kv_seq / kv_rand;
    assert!(
        (0.8..1.25).contains(&ratio),
        "KV-SSD seq/rand insert ratio should be ~1, got {ratio}"
    );
    // Block firmware: random updates pay the reorganization path.
    let blk_probe = |pattern| {
        let mut blk = setup::block_direct(4096);
        let fill = WorkloadSpec::new("fill", 3_000, 3_000)
            .mix(OpMix::InsertOnly)
            .pattern(AccessPattern::Sequential)
            .value(ValueSize::Fixed(4096))
            .queue_depth(16);
        let f = run_phase(&mut blk, &fill, SimTime::ZERO);
        let spec = WorkloadSpec::new("p", 3_000, 3_000)
            .mix(OpMix::UpdateOnly)
            .pattern(pattern)
            .value(ValueSize::Fixed(4096))
            .queue_depth(16);
        run_phase(&mut blk, &spec, f.finished + SimDuration::from_millis(200))
            .writes
            .mean()
            .as_micros_f64()
    };
    let blk_seq = blk_probe(AccessPattern::Sequential);
    let blk_rand = blk_probe(AccessPattern::Uniform);
    assert!(
        blk_seq < blk_rand * 0.85,
        "block sequential writes should beat random ({blk_seq} vs {blk_rand})"
    );
}

#[test]
fn kv_api_cpu_is_a_fraction_of_rocksdb() {
    let cpu = |store: &mut dyn KvStore| {
        let spec = WorkloadSpec::new("cpu", 2_000, 2_000)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(8);
        run_phase(store, &spec, SimTime::ZERO);
        store.host_cpu_busy()
    };
    let kv = cpu(&mut setup::kv_ssd());
    let rdb = cpu(&mut setup::rocksdb());
    assert!(
        rdb.as_nanos() > kv.as_nanos() * 4,
        "RocksDB host CPU ({rdb}) should dwarf the KV API's ({kv})"
    );
}

#[test]
fn deeper_queues_speed_up_kv_reads() {
    let elapsed = |qd: usize| {
        let mut s = setup::kv_ssd();
        let fill = WorkloadSpec::new("fill", 2_000, 2_000)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(1024))
            .queue_depth(16);
        let f = run_phase(&mut s, &fill, SimTime::ZERO);
        let reads = WorkloadSpec::new("read", 2_000, 2_000)
            .mix(OpMix::ReadOnly)
            .queue_depth(qd)
            .seed(5);
        run_phase(&mut s, &reads, f.finished + SimDuration::from_secs(1)).elapsed()
    };
    let qd1 = elapsed(1);
    let qd32 = elapsed(32);
    assert!(
        qd32.as_nanos() * 3 < qd1.as_nanos(),
        "QD32 reads ({qd32}) should beat QD1 ({qd1}) by > 3x on 32 dies"
    );
}

#[test]
fn zipfian_updates_concentrate_device_load() {
    let mut s = setup::kv_ssd();
    let fill = WorkloadSpec::new("fill", 2_000, 2_000)
        .mix(OpMix::InsertOnly)
        .value(ValueSize::Fixed(2048))
        .queue_depth(8);
    let f = run_phase(&mut s, &fill, SimTime::ZERO);
    let zipf = WorkloadSpec::new("zipf", 4_000, 2_000)
        .mix(OpMix::Mixed { read_pct: 50 })
        .pattern(AccessPattern::Zipfian { theta: 0.99 })
        .value(ValueSize::Fixed(2048))
        .queue_depth(8)
        .seed(77);
    let m = run_phase(&mut s, &zipf, f.finished + SimDuration::from_millis(100));
    assert_eq!(m.reads.count() + m.writes.count(), 4_000);
    assert_eq!(m.not_found, 0, "zipf reads must stay inside the population");
}
