//! Cross-run determinism: identical seeds must give bit-identical
//! virtual-time results for every system and for whole experiments —
//! the property that makes the reproduction's numbers citable.

use kvssd_study::bench::experiments::{fig5, fig7};
use kvssd_study::bench::{setup, Scale};
use kvssd_study::kvbench::{run_phase, AccessPattern, KvStore, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::SimTime;

fn signature(store: &mut dyn KvStore) -> (u64, u64, u64) {
    let spec = WorkloadSpec::new("sig", 1_500, 1_500)
        .mix(OpMix::InsertOnly)
        .pattern(AccessPattern::Uniform)
        .value(ValueSize::Uniform { lo: 32, hi: 6_000 })
        .queue_depth(8)
        .seed(20_26);
    let f = run_phase(store, &spec, SimTime::ZERO);
    let mixed = WorkloadSpec::new("mix", 2_000, 1_500)
        .mix(OpMix::Mixed { read_pct: 60 })
        .pattern(AccessPattern::Zipfian { theta: 0.8 })
        .value(ValueSize::facebook_like())
        .queue_depth(16)
        .seed(7_7);
    let m = run_phase(store, &mixed, f.finished);
    (
        m.finished.as_nanos(),
        m.writes.mean().as_nanos(),
        m.reads.percentile(99.0).as_nanos(),
    )
}

#[test]
fn every_stack_is_deterministic_per_seed() {
    let kv = |_: ()| signature(&mut setup::kv_ssd());
    assert_eq!(kv(()), kv(()), "KV-SSD");
    let rdb = |_: ()| signature(&mut setup::rocksdb());
    assert_eq!(rdb(()), rdb(()), "RocksDB");
    let hs = |_: ()| signature(&mut setup::aerospike());
    assert_eq!(hs(()), hs(()), "Aerospike");
    let blk = |_: ()| signature(&mut setup::block_direct(4096));
    assert_eq!(blk(()), blk(()), "block direct");
}

#[test]
fn cluster_runs_are_deterministic_per_seed() {
    // Same seed + shard count → byte-identical report tables, across
    // routing, per-shard queues, device GC, and a live rebalance.
    let run = || {
        let mut store = setup::kv_cluster_small(4, 42);
        let spec = WorkloadSpec::new("cluster-sig", 1_000, 1_000)
            .mix(OpMix::Mixed { read_pct: 40 })
            .pattern(AccessPattern::Zipfian { theta: 0.9 })
            .value(ValueSize::Uniform { lo: 64, hi: 4_096 })
            .queue_depth(16)
            .seed(12_21);
        let m = run_phase(&mut store, &spec, SimTime::ZERO);
        let cluster = store.cluster_mut();
        let rep = cluster
            .remove_shard(m.finished, cluster.shards()[2].id())
            .unwrap();
        format!(
            "{}\nmoved={} bytes={} done={}",
            cluster.report().render(),
            rep.moved_keys,
            rep.moved_bytes,
            rep.completed.as_nanos()
        )
    };
    let a = run();
    assert_eq!(a, run(), "cluster report bytes diverged across runs");
    // And the report really carries the run (not a blank table).
    assert!(a.contains("cluster shards=3"), "unexpected report: {a}");
}

#[test]
fn replication_runs_are_deterministic_per_seed() {
    // Replicated quorum I/O plus a repair keep byte-identical reports:
    // fan-out order, quorum selection, and the BTreeSet repair walk are
    // all pure functions of the seed.
    let run = || {
        let mut store = setup::kv_cluster_replicated_small(4, 3, 42);
        let spec = WorkloadSpec::new("replication-sig", 800, 800)
            .mix(OpMix::Mixed { read_pct: 50 })
            .pattern(AccessPattern::Zipfian { theta: 0.9 })
            .value(ValueSize::Uniform { lo: 64, hi: 2_048 })
            .queue_depth(8)
            .seed(19_84);
        let m = run_phase(&mut store, &spec, SimTime::ZERO);
        let cluster = store.cluster_mut();
        let rep = cluster
            .remove_shard(m.finished, cluster.shards()[1].id())
            .unwrap();
        format!(
            "{}\nmoved={} copied={} dropped={} done={}",
            cluster.report().render(),
            rep.moved_keys,
            rep.copied_replicas,
            rep.dropped_replicas,
            rep.completed.as_nanos()
        )
    };
    let a = run();
    assert_eq!(a, run(), "replicated report bytes diverged across runs");
    assert!(a.contains("replication r=3"), "unexpected report: {a}");
    assert!(!a.contains("copied=0"), "repair did nothing: {a}");
}

#[test]
fn whole_experiments_are_deterministic() {
    let a = fig7::run(Scale::Tiny);
    let b = fig7::run(Scale::Tiny);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.system, rb.system);
        assert_eq!(
            ra.amplification.to_bits(),
            rb.amplification.to_bits(),
            "fig7 {}@{}",
            ra.system,
            ra.value_bytes
        );
    }
    let a = fig5::run(Scale::Tiny);
    let b = fig5::run(Scale::Tiny);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.kv_mbps.to_bits(), rb.kv_mbps.to_bits());
        assert_eq!(ra.blk_mbps.to_bits(), rb.blk_mbps.to_bits());
    }
}
