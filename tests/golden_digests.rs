//! Pinned golden digests for the cluster figures' rendered tables.
//!
//! The per-op fast path (batched submission, in-place key generation,
//! hash-keyed registries) and the fill/measure sub-cell split are
//! host-side optimizations: they must not move a single byte of any
//! figure. These tests pin the tiny-scale `scaleout`, `replication`,
//! and `fabric` tables to fixed digests at worker thread counts 1 (the
//! exact serial path) and 4 (the pool), so any behavioral drift —
//! from the hot path, the scheduler, or the device model — fails CI
//! with a diffable signal.
//!
//! If a change is *supposed* to move these tables (a modeling change,
//! a new column), re-pin: run with `KVSSD_GOLDEN_PRINT=1` to print the
//! new digests, and record the move in CHANGES.md.

use kvssd_study::bench::experiments::{cells, fabric, replication, scaleout};
use kvssd_study::bench::Scale;

/// FNV-style fold (mix64-chained) over the rendered bytes.
fn digest(s: &str) -> u64 {
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        d = kvssd_study::sim::rng::mix64(d ^ b as u64);
    }
    d
}

const SCALEOUT_TINY: u64 = 0xabe13033e5996bbd;
const REPLICATION_TINY: u64 = 0x1d1051945373459c;
const FABRIC_TINY: u64 = 0x4dfc10f50a108b79;

fn check(name: &str, rendered: &str, want: u64) {
    let got = digest(rendered);
    if kvssd_study::bench::env_config("KVSSD_GOLDEN_PRINT").is_some() {
        println!("{name}: 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, want,
        "{name} table drifted from its pinned digest (got 0x{got:016x}); \
         a host-side optimization must not move figure bytes.\n{rendered}"
    );
}

/// One test (not several) so the process-global thread override cannot
/// race between concurrently running test functions.
#[test]
fn cluster_figures_match_pinned_digests_at_threads_1_and_4() {
    for threads in [1usize, 4] {
        cells::set_thread_override(Some(threads));
        check(
            "scaleout",
            &scaleout::render(&scaleout::run(Scale::Tiny)),
            SCALEOUT_TINY,
        );
        check(
            "replication",
            &replication::render(&replication::run(Scale::Tiny)),
            REPLICATION_TINY,
        );
        check(
            "fabric",
            &fabric::render(&fabric::run(Scale::Tiny)),
            FABRIC_TINY,
        );
    }
    cells::set_thread_override(None);
}
