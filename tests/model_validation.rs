//! Validates the analytical model (the paper's future-work item) against
//! the simulator: predictions must land within a factor-of-two band of
//! measurement, and every *shape* (cliffs, dips, crossovers) must match.

use kvssd_study::bench::setup;
use kvssd_study::core::{KvConfig, KvModel};
use kvssd_study::flash::{FlashTiming, Geometry};
use kvssd_study::kvbench::{run_phase, OpMix, ValueSize, WorkloadSpec};
use kvssd_study::sim::SimTime;

fn model() -> KvModel {
    KvModel::new(
        KvConfig::pm983_scaled(),
        Geometry::pm983_scaled(),
        FlashTiming::pm983_like(),
    )
}

/// Measured (store, retrieve) mean latency at QD 1 for a population.
fn measure_latency(value: u32, n: u64) -> (f64, f64) {
    let mut s = setup::kv_ssd_with(setup::kv_config_macro());
    let f = run_phase(
        &mut s,
        &WorkloadSpec::new("fill", n, n)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(value))
            .queue_depth(16),
        SimTime::ZERO,
    );
    let w = run_phase(
        &mut s,
        &WorkloadSpec::new("w", 1_500, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(value))
            .queue_depth(1)
            .seed(71),
        f.finished + kvssd_study::sim::SimDuration::from_millis(200),
    );
    let r = run_phase(
        &mut s,
        &WorkloadSpec::new("r", 1_500, n)
            .mix(OpMix::ReadOnly)
            .queue_depth(1)
            .seed(73),
        w.finished + kvssd_study::sim::SimDuration::from_millis(200),
    );
    (
        w.writes.mean().as_micros_f64(),
        r.reads.mean().as_micros_f64(),
    )
}

fn within_2x(predicted: f64, measured: f64) -> bool {
    predicted > measured * 0.5 && predicted < measured * 2.0
}

#[test]
fn model_predicts_low_occupancy_latencies() {
    let m = model();
    let (w, r) = measure_latency(512, 5_000);
    let pw = m.store_latency_us(16, 512, 5_000);
    let pr = m.retrieve_latency_us(16, 512, 5_000);
    assert!(
        within_2x(pw, w),
        "store: predicted {pw:.1}, measured {w:.1}"
    );
    assert!(
        within_2x(pr, r),
        "retrieve: predicted {pr:.1}, measured {r:.1}"
    );
}

#[test]
fn model_predicts_the_occupancy_cliff() {
    let m = model();
    let n_high = 400_000;
    let (w_low, r_low) = measure_latency(512, 5_000);
    let (w_high, r_high) = measure_latency(512, n_high);
    let measured_w_deg = w_high / w_low;
    let predicted_w_deg = m.write_degradation(16, 512, n_high);
    assert!(
        predicted_w_deg > measured_w_deg * 0.4 && predicted_w_deg < measured_w_deg * 2.5,
        "write degradation: predicted {predicted_w_deg:.1}x, measured {measured_w_deg:.1}x"
    );
    // Reads degrade too, but far less — in both worlds.
    let measured_r_deg = r_high / r_low;
    let predicted_r_deg =
        m.retrieve_latency_us(16, 512, n_high) / m.retrieve_latency_us(16, 512, 5_000);
    assert!(
        measured_w_deg > measured_r_deg,
        "sim: writes degrade harder"
    );
    assert!(
        predicted_w_deg > predicted_r_deg,
        "model: writes degrade harder"
    );
}

#[test]
fn model_predicts_insert_bandwidth_within_2x() {
    let m = model();
    for value in [4096u32, 24 * 1024, 25 * 1024] {
        let mut s = setup::kv_ssd();
        let n = (400u64 << 20) / value as u64;
        let f = run_phase(
            &mut s,
            &WorkloadSpec::new("fill", n, n)
                .mix(OpMix::InsertOnly)
                .value(ValueSize::Fixed(value))
                .queue_depth(64),
            SimTime::ZERO,
        );
        let measured = f.mean_mbps();
        let predicted = m.write_bandwidth_mbps(16, value as u64);
        assert!(
            within_2x(predicted, measured),
            "{value} B: predicted {predicted:.0} MB/s, measured {measured:.0} MB/s"
        );
    }
}

#[test]
fn model_and_simulator_agree_on_the_fig5_dip() {
    let m = model();
    let dip_model = m.write_bandwidth_mbps(16, 25 * 1024) / m.write_bandwidth_mbps(16, 24 * 1024);
    let measure = |value: u32| {
        let mut s = setup::kv_ssd();
        let n = (200u64 << 20) / value as u64;
        run_phase(
            &mut s,
            &WorkloadSpec::new("fill", n, n)
                .mix(OpMix::InsertOnly)
                .value(ValueSize::Fixed(value))
                .queue_depth(64),
            SimTime::ZERO,
        )
        .mean_mbps()
    };
    let dip_sim = measure(25 * 1024) / measure(24 * 1024);
    assert!(
        dip_model < 0.75 && dip_sim < 0.75,
        "both must dip (model {dip_model:.2}, sim {dip_sim:.2})"
    );
    assert!(
        (dip_model - dip_sim).abs() < 0.25,
        "dip depth should agree: model {dip_model:.2} vs sim {dip_sim:.2}"
    );
}
