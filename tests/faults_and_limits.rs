//! Failure injection and limit behavior across the stack.

use kvssd_study::block_ftl::{BlockFtlConfig, BlockSsd};
use kvssd_study::core::{KvConfig, KvError, KvSsd, Payload};
use kvssd_study::flash::{FaultPlan, FlashDevice, FlashTiming, Geometry};
use kvssd_study::sim::SimTime;

fn key(i: u64) -> Vec<u8> {
    format!("fault.{i:010}").into_bytes()
}

#[test]
fn kvssd_survives_program_and_erase_faults() {
    let flash = FlashDevice::with_faults(
        Geometry::small(),
        FlashTiming::pm983_like(),
        FaultPlan {
            program_fail_one_in: Some(15),
            erase_fail_one_in: Some(30),
        },
    );
    let mut dev = KvSsd::over(flash, KvConfig::small());
    let mut t = SimTime::ZERO;
    let n = 400u64;
    for round in 0..2u64 {
        for i in 0..n {
            t = dev
                .store(t, &key(i), Payload::synthetic(1500, round * n + i))
                .unwrap();
        }
    }
    assert!(
        dev.flash().stats().program_failures > 0,
        "the plan must actually have injected faults"
    );
    // All data must survive retirements, re-placements, and GC around
    // dead blocks.
    for i in 0..n {
        let got = dev.retrieve(t, &key(i)).unwrap();
        assert_eq!(
            got.value,
            Some(Payload::synthetic(1500, n + i)),
            "key {i} lost or stale after faults"
        );
    }
}

#[test]
fn block_ssd_survives_program_faults() {
    let flash = FlashDevice::with_faults(
        Geometry::small(),
        FlashTiming::pm983_like(),
        FaultPlan {
            program_fail_one_in: Some(40),
            erase_fail_one_in: None,
        },
    );
    let mut dev = BlockSsd::over(flash, BlockFtlConfig::pm983_like());
    let mut t = SimTime::ZERO;
    let cap = dev.capacity_bytes();
    for off in (0..cap / 4).step_by(4096) {
        t = dev.write(t, off, 4096).unwrap();
    }
    dev.flush(t);
    assert!(dev.flash().stats().program_failures > 0);
    assert!(dev.stats().replaced_after_failure > 0);
    // Mapping accounting stayed exact: one 4 KiB cluster per write.
    let writes = (cap / 4).div_ceil(4096);
    assert_eq!(dev.valid_bytes(), writes * 4096);
}

#[test]
fn kvp_limit_reports_index_full() {
    let mut cfg = KvConfig::small();
    cfg.max_kvps = 100;
    let mut dev = KvSsd::new(Geometry::small(), FlashTiming::pm983_like(), cfg);
    let mut t = SimTime::ZERO;
    for i in 0..100u64 {
        t = dev.store(t, &key(i), Payload::synthetic(32, i)).unwrap();
    }
    match dev.store(t, &key(100), Payload::synthetic(32, 0)) {
        Err(KvError::IndexFull { max_kvps }) => assert_eq!(max_kvps, 100),
        other => panic!("expected IndexFull, got {other:?}"),
    }
    // Updates and deletes still work at the limit.
    let (t, existed) = dev.delete(t, &key(0)).unwrap();
    assert!(existed);
    dev.store(t, &key(100), Payload::synthetic(32, 0))
        .expect("a slot freed by delete is reusable");
}

#[test]
fn device_full_is_reported_not_hung() {
    let mut dev = KvSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        KvConfig::small(),
    );
    let mut t = SimTime::ZERO;
    let mut full_seen = false;
    for i in 0..20_000u64 {
        match dev.store(t, &key(i), Payload::synthetic(512 * 1024, i)) {
            Ok(t2) => t = t2,
            Err(KvError::DeviceFull) => {
                full_seen = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(full_seen, "filling past capacity must report DeviceFull");
    // The device still serves reads afterwards.
    let got = dev.retrieve(t, &key(0)).unwrap();
    assert!(got.value.is_some());
}

#[test]
fn key_and_value_limits_are_exact() {
    let mut dev = KvSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        KvConfig::small(),
    );
    // 4 B and 255 B keys are legal bounds; 2 MiB values are the cap.
    let t = dev
        .store(SimTime::ZERO, b"abcd", Payload::synthetic(1, 0))
        .unwrap();
    let long = vec![b'k'; 255];
    let t = dev.store(t, &long, Payload::synthetic(1, 0)).unwrap();
    dev.store(t, b"maxval", Payload::synthetic(2 * 1024 * 1024, 0))
        .unwrap();
    assert!(matches!(
        dev.store(t, b"abc", Payload::synthetic(1, 0)),
        Err(KvError::KeyTooShort { .. })
    ));
    assert!(matches!(
        dev.store(t, &vec![b'k'; 256], Payload::synthetic(1, 0)),
        Err(KvError::KeyTooLong { .. })
    ));
    assert!(matches!(
        dev.store(t, b"toolarge", Payload::synthetic(2 * 1024 * 1024 + 1, 0)),
        Err(KvError::ValueTooLarge { .. })
    ));
}
